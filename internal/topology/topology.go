// Package topology models the physical layout of an on-chip-network based
// manycore: a 2D mesh of nodes (core + private L1 + LLC bank + router), a
// set of memory controllers attached at fixed positions, and a logical
// partitioning of the mesh into rectangular regions.
//
// The package is purely geometric: it answers questions such as "what is
// the Manhattan distance between node 7 and MC 2", "which region does node
// 13 belong to", and "which links does an X-Y-routed packet from node A to
// node B traverse". Everything else in the system (the NoC timing model,
// the affinity vectors, the mapping algorithm) is built on these answers.
package topology

import (
	"fmt"
)

// NodeID identifies a mesh node. Nodes are numbered row-major:
// node = y*Width + x, with (0,0) the top-left corner.
type NodeID int

// MCID identifies a memory controller.
type MCID int

// RegionID identifies a logical region of the mesh.
type RegionID int

// Coord is a position on the 2D mesh.
type Coord struct {
	X, Y int
}

// Manhattan returns the Manhattan (L1) distance between two coordinates.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MCPlacement selects where the memory controllers sit on the mesh edge.
type MCPlacement int

const (
	// MCCorners places one MC at each corner of the mesh: MC0 top-left,
	// MC1 top-right, MC2 bottom-right, MC3 bottom-left. This is the
	// default placement in the paper (Figure 3).
	MCCorners MCPlacement = iota
	// MCEdgeMiddles places one MC at the middle of each side: MC0 top,
	// MC1 right, MC2 bottom, MC3 left. This is the alternate placement
	// used by the paper's sensitivity study (Figure 9).
	MCEdgeMiddles
	// MCCustom marks a mesh whose MC attachment points were supplied
	// explicitly via NewWithMCs or WithMCs rather than derived from the
	// mesh dimensions. Used by the placement search in internal/placeopt.
	MCCustom
)

func (p MCPlacement) String() string {
	switch p {
	case MCCorners:
		return "corners"
	case MCEdgeMiddles:
		return "edge-middles"
	case MCCustom:
		return "custom"
	default:
		return fmt.Sprintf("MCPlacement(%d)", int(p))
	}
}

// Mesh describes a W×H 2D mesh with regions and memory controllers.
type Mesh struct {
	Width, Height int

	// Wrap turns the mesh into a 2D torus: links wrap around at the
	// edges and dimension-ordered routing takes the shorter way around
	// each dimension. The paper's approach only needs relative
	// positions exposed (§3.9), so all affinity machinery works
	// unchanged on top of torus distances.
	Wrap bool

	// RegionsX, RegionsY give the logical region grid. Each region is a
	// (Width/RegionsX)×(Height/RegionsY) rectangle of nodes. Regions are
	// numbered row-major like nodes.
	RegionsX, RegionsY int

	Placement MCPlacement

	mcs []Coord // position of each MC's attachment node
}

// New constructs a mesh. Width must be divisible by regionsX and Height by
// regionsY so that regions tile the mesh exactly.
func New(width, height, regionsX, regionsY int, placement MCPlacement) (*Mesh, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("topology: invalid mesh %dx%d", width, height)
	}
	if regionsX <= 0 || regionsY <= 0 || width%regionsX != 0 || height%regionsY != 0 {
		return nil, fmt.Errorf("topology: region grid %dx%d does not tile mesh %dx%d",
			regionsX, regionsY, width, height)
	}
	m := &Mesh{
		Width:     width,
		Height:    height,
		RegionsX:  regionsX,
		RegionsY:  regionsY,
		Placement: placement,
	}
	switch placement {
	case MCCorners:
		m.mcs = []Coord{
			{0, 0},
			{width - 1, 0},
			{width - 1, height - 1},
			{0, height - 1},
		}
	case MCEdgeMiddles:
		m.mcs = []Coord{
			{width / 2, 0},
			{width - 1, height / 2},
			{width / 2, height - 1},
			{0, height / 2},
		}
	default:
		return nil, fmt.Errorf("topology: unknown MC placement %v", placement)
	}
	return m, nil
}

// ValidateMCs checks an explicit MC attachment list against a
// width×height mesh: every coordinate must lie on the mesh and no two
// controllers may share a node. The error messages are stable and name
// the offending coordinate so callers can surface them verbatim.
func ValidateMCs(width, height int, mcs []Coord) error {
	if len(mcs) == 0 {
		return fmt.Errorf("topology: placement needs at least one MC")
	}
	seen := make(map[Coord]bool, len(mcs))
	for i, c := range mcs {
		if c.X < 0 || c.X >= width || c.Y < 0 || c.Y >= height {
			return fmt.Errorf("topology: mc %d at (%d,%d) outside %dx%d mesh", i, c.X, c.Y, width, height)
		}
		if seen[c] {
			return fmt.Errorf("topology: overlapping MCs at (%d,%d)", c.X, c.Y)
		}
		seen[c] = true
	}
	return nil
}

// NewWithMCs constructs a mesh with explicit MC attachment coordinates
// instead of a named placement. The tiling rules match New; the MC list
// is validated with ValidateMCs and copied.
func NewWithMCs(width, height, regionsX, regionsY int, mcs []Coord) (*Mesh, error) {
	m, err := New(width, height, regionsX, regionsY, MCCorners)
	if err != nil {
		return nil, err
	}
	if err := ValidateMCs(width, height, mcs); err != nil {
		return nil, err
	}
	m.Placement = MCCustom
	m.mcs = append([]Coord(nil), mcs...)
	return m, nil
}

// WithMCs returns a copy of the mesh with its memory controllers moved
// to the given attachment coordinates, keeping dimensions, regions and
// wrap mode. This is the mutation primitive of the placement search:
// candidate chips share everything with the base target except where
// the MCs sit.
func (m *Mesh) WithMCs(mcs []Coord) (*Mesh, error) {
	if err := ValidateMCs(m.Width, m.Height, mcs); err != nil {
		return nil, err
	}
	m2 := *m
	m2.Placement = MCCustom
	m2.mcs = append([]Coord(nil), mcs...)
	return &m2, nil
}

// MCs returns a copy of the MC attachment coordinates in MC-id order.
func (m *Mesh) MCs() []Coord { return append([]Coord(nil), m.mcs...) }

// AMD returns the average Manhattan distance (wrap-aware on a torus)
// from coordinate c to every mesh node — the ordering metric of the
// PCMap-style greedy placement seed: nodes with low AMD are centrally
// located, nodes with high AMD sit in the periphery.
func (m *Mesh) AMD(c Coord) float64 {
	n := m.NodeAt(c)
	total := 0
	for i := 0; i < m.NumNodes(); i++ {
		total += m.Distance(n, NodeID(i))
	}
	return float64(total) / float64(m.NumNodes())
}

// EdgeCoords returns the perimeter coordinates of the mesh row-major,
// the realistic candidate sites for MC attachment (controllers need
// pin-out at the die edge).
func (m *Mesh) EdgeCoords() []Coord {
	var out []Coord
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			if x == 0 || x == m.Width-1 || y == 0 || y == m.Height-1 {
				out = append(out, Coord{x, y})
			}
		}
	}
	return out
}

// MustNew is New but panics on error; intended for static configurations.
func MustNew(width, height, regionsX, regionsY int, placement MCPlacement) *Mesh {
	m, err := New(width, height, regionsX, regionsY, placement)
	if err != nil {
		panic(err)
	}
	return m
}

// Default6x6 returns the paper's default target: a 6×6 mesh partitioned
// into 9 regions of 2×2 nodes with corner MCs (Table 4).
func Default6x6() *Mesh { return MustNew(6, 6, 3, 3, MCCorners) }

// NumNodes returns the number of mesh nodes (and cores, and LLC banks).
func (m *Mesh) NumNodes() int { return m.Width * m.Height }

// NumRegions returns the number of logical regions.
func (m *Mesh) NumRegions() int { return m.RegionsX * m.RegionsY }

// NumMCs returns the number of memory controllers.
func (m *Mesh) NumMCs() int { return len(m.mcs) }

// NodeAt returns the node at coordinate c.
func (m *Mesh) NodeAt(c Coord) NodeID { return NodeID(c.Y*m.Width + c.X) }

// CoordOf returns the coordinate of node n.
func (m *Mesh) CoordOf(n NodeID) Coord {
	return Coord{X: int(n) % m.Width, Y: int(n) / m.Width}
}

// MCCoord returns the attachment coordinate of memory controller mc.
func (m *Mesh) MCCoord(mc MCID) Coord { return m.mcs[mc] }

// MCNode returns the mesh node a memory controller is attached to.
func (m *Mesh) MCNode(mc MCID) NodeID { return m.NodeAt(m.mcs[mc]) }

// RegionOf returns the region containing node n.
func (m *Mesh) RegionOf(n NodeID) RegionID {
	c := m.CoordOf(n)
	rw := m.Width / m.RegionsX
	rh := m.Height / m.RegionsY
	return RegionID((c.Y/rh)*m.RegionsX + c.X/rw)
}

// RegionNodes returns the nodes belonging to region r, row-major.
func (m *Mesh) RegionNodes(r RegionID) []NodeID {
	rw := m.Width / m.RegionsX
	rh := m.Height / m.RegionsY
	rx := int(r) % m.RegionsX
	ry := int(r) / m.RegionsX
	nodes := make([]NodeID, 0, rw*rh)
	for y := ry * rh; y < (ry+1)*rh; y++ {
		for x := rx * rw; x < (rx+1)*rw; x++ {
			nodes = append(nodes, m.NodeAt(Coord{x, y}))
		}
	}
	return nodes
}

// RegionCenter returns the geometric center of region r. Centers lie on
// half-integer coordinates for even-sized regions, which is why the result
// is scaled by 2: the returned coordinate is in "double units" so it stays
// integral. Use RegionDistance/RegionMCDistance for distances.
func (m *Mesh) regionCenter2x(r RegionID) Coord {
	rw := m.Width / m.RegionsX
	rh := m.Height / m.RegionsY
	rx := int(r) % m.RegionsX
	ry := int(r) / m.RegionsX
	return Coord{X: 2*rx*rw + rw - 1, Y: 2*ry*rh + rh - 1}
}

// RegionMCDistance returns twice the Manhattan distance between the center
// of region r and memory controller mc. (Twice, so that half-integer region
// centers still yield an exact integer.)
func (m *Mesh) RegionMCDistance(r RegionID, mc MCID) int {
	c := m.regionCenter2x(r)
	p := m.mcs[mc]
	return abs(c.X-2*p.X) + abs(c.Y-2*p.Y)
}

// RegionDistance returns twice the Manhattan distance between the centers
// of regions a and b.
func (m *Mesh) RegionDistance(a, b RegionID) int {
	ca := m.regionCenter2x(a)
	cb := m.regionCenter2x(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// RegionNeighbors returns the regions that share an edge with r in the
// logical region grid (4-neighborhood), in N, S, W, E order (present ones).
func (m *Mesh) RegionNeighbors(r RegionID) []RegionID {
	rx := int(r) % m.RegionsX
	ry := int(r) / m.RegionsX
	var out []RegionID
	if ry > 0 {
		out = append(out, r-RegionID(m.RegionsX))
	}
	if ry < m.RegionsY-1 {
		out = append(out, r+RegionID(m.RegionsX))
	}
	if rx > 0 {
		out = append(out, r-1)
	}
	if rx < m.RegionsX-1 {
		out = append(out, r+1)
	}
	return out
}

// Distance returns the routing distance between two nodes: Manhattan on
// a mesh, wrap-aware Manhattan on a torus.
func (m *Mesh) Distance(a, b NodeID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	if !m.Wrap {
		return ca.Manhattan(cb)
	}
	return m.wrapDelta(ca.X, cb.X, m.Width) + m.wrapDelta(ca.Y, cb.Y, m.Height)
}

// wrapDelta returns the shorter directed distance between two coordinates
// on a ring of the given size.
func (m *Mesh) wrapDelta(a, b, size int) int {
	d := abs(a - b)
	if w := size - d; w < d {
		return w
	}
	return d
}

// DistanceToMC returns the Manhattan distance between node n and MC mc.
func (m *Mesh) DistanceToMC(n NodeID, mc MCID) int {
	return m.CoordOf(n).Manhattan(m.mcs[mc])
}

// NearestMC returns the MC closest (Manhattan) to node n. Ties are broken
// toward the lower MC id, which is deterministic and matches X-Y routing's
// deterministic nature.
func (m *Mesh) NearestMC(n NodeID) MCID {
	best, bestD := MCID(0), m.DistanceToMC(n, 0)
	for mc := 1; mc < len(m.mcs); mc++ {
		if d := m.DistanceToMC(n, MCID(mc)); d < bestD {
			best, bestD = MCID(mc), d
		}
	}
	return best
}

// LinkID identifies a directed link between two adjacent routers. Links are
// numbered so that every (node, direction) pair has a unique id.
type LinkID int

// Directions for link numbering.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

// NumLinks returns an upper bound on the number of directed links, suitable
// for sizing per-link state arrays.
func (m *Mesh) NumLinks() int { return m.NumNodes() * numDirs }

func (m *Mesh) link(from Coord, dir int) LinkID {
	return LinkID(int(m.NodeAt(from))*numDirs + dir)
}

// Route appends to dst the directed links traversed by an X-Y-routed packet
// from node a to node b, and returns the extended slice. The X leg is
// walked first, then the Y leg, matching the deterministic X-Y routing
// policy in Table 4. On a torus the shorter way around each dimension is
// taken. A route between co-located nodes is empty.
func (m *Mesh) Route(dst []LinkID, a, b NodeID) []LinkID {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	dst = m.routeDim(dst, &ca.X, cb.X, m.Width, func(c Coord, fwd bool) (LinkID, Coord) {
		if fwd {
			c2 := c
			c2.X = (c.X + 1) % m.Width
			return m.link(c, dirEast), c2
		}
		c2 := c
		c2.X = (c.X - 1 + m.Width) % m.Width
		return m.link(c, dirWest), c2
	}, &ca)
	dst = m.routeDim(dst, &ca.Y, cb.Y, m.Height, func(c Coord, fwd bool) (LinkID, Coord) {
		if fwd {
			c2 := c
			c2.Y = (c.Y + 1) % m.Height
			return m.link(c, dirSouth), c2
		}
		c2 := c
		c2.Y = (c.Y - 1 + m.Height) % m.Height
		return m.link(c, dirNorth), c2
	}, &ca)
	return dst
}

// routeDim walks one dimension from *cur to target, appending links.
func (m *Mesh) routeDim(dst []LinkID, cur *int, target, size int, step func(Coord, bool) (LinkID, Coord), pos *Coord) []LinkID {
	for *cur != target {
		fwd := *cur < target
		if m.Wrap {
			// Take the shorter way around the ring.
			d := target - *cur
			if d < 0 {
				d += size
			}
			fwd = d <= size-d
		}
		l, next := step(*pos, fwd)
		dst = append(dst, l)
		*pos = next
	}
	return dst
}

// Hops returns the number of links an X-Y packet from a to b traverses.
func (m *Mesh) Hops(a, b NodeID) int { return m.Distance(a, b) }

// RouteTable holds the precomputed X-Y routes between every pair of mesh
// nodes, flattened into a single backing array: route a→b occupies
// links[off[a*n+b]:off[a*n+b+1]]. Routing is deterministic and the mesh
// is immutable after construction, so the table is computed once and
// shared read-only; it turns per-packet route computation into two array
// index loads (6×6 mesh: 36 nodes, 1296 routes, ~5KB of links).
type RouteTable struct {
	n     int
	links []LinkID
	off   []int32
}

// NewRouteTable precomputes all-pairs routes for the mesh.
func (m *Mesh) NewRouteTable() *RouteTable {
	n := m.NumNodes()
	rt := &RouteTable{n: n, off: make([]int32, n*n+1)}
	// First pass sizes the backing array exactly (the total link count
	// is the sum of all pairwise distances), avoiding append growth.
	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += m.Distance(NodeID(a), NodeID(b))
		}
	}
	rt.links = make([]LinkID, 0, total)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			rt.links = m.Route(rt.links, NodeID(a), NodeID(b))
			rt.off[a*n+b+1] = int32(len(rt.links))
		}
	}
	return rt
}

// Route returns the precomputed link sequence from a to b. The returned
// slice aliases the table and must not be modified.
func (rt *RouteTable) Route(a, b NodeID) []LinkID {
	i := int(a)*rt.n + int(b)
	return rt.links[rt.off[i]:rt.off[i+1]:rt.off[i+1]]
}
