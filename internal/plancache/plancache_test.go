package plancache

import (
	"fmt"
	"sync"
	"testing"
)

const triadSrc = `
param N = 65536
array A[N]
array B[N]
array C[N]
parallel for i = 0..N work 64 {
  A[i] = B[i] + C[i]
}
`

func baseSpec() Spec {
	return Spec{
		Source: triadSrc,
		Params: map[string]int64{"N": 65536},
		MeshW:  6, MeshH: 6,
		RegionsX: 3, RegionsY: 3,
		Kind: "map",
	}
}

func mustFP(t *testing.T, s Spec) string {
	t.Helper()
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return fp
}

func TestFingerprintStability(t *testing.T) {
	base := mustFP(t, baseSpec())

	tests := []struct {
		name   string
		mutate func(*Spec)
		same   bool
	}{
		{"identical spec", func(s *Spec) {}, true},
		{"whitespace-only source change", func(s *Spec) {
			s.Source = "param N=65536\narray A[N]\narray B[N]\narray C[N]\nparallel for i=0..N work 64 { A[i]=B[i]+C[i] }"
		}, true},
		{"comments stripped", func(s *Spec) {
			s.Source = "# a triad\n" + triadSrc + "\n# trailing comment"
		}, true},
		{"different param set", func(s *Spec) {
			s.Params = map[string]int64{"Z": 1, "N": 65536, "A": 2}
		}, false},
		{"different mesh", func(s *Spec) { s.MeshW = 8 }, false},
		{"different regions", func(s *Spec) { s.RegionsY = 2 }, false},
		{"different LLC mode", func(s *Spec) { s.SharedLLC = true }, false},
		{"different alpha", func(s *Spec) { s.Alpha = 0.9 }, false},
		{"different seed", func(s *Spec) { s.Seed = 7 }, false},
		{"different fine-MAC", func(s *Spec) { s.FineMAC = true }, false},
		{"different intra policy", func(s *Spec) { s.Intra = 1 }, false},
		{"different timing iters", func(s *Spec) { s.TimingIters = 5 }, false},
		{"different kind", func(s *Spec) { s.Kind = "simulate" }, false},
		{"different source tokens", func(s *Spec) {
			s.Source = triadSrc + "\nparallel for i = 0..N work 64 { C[i] = A[i] }"
		}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := baseSpec()
			tc.mutate(&s)
			got := mustFP(t, s)
			if (got == base) != tc.same {
				t.Errorf("fingerprint equality = %v, want %v", got == base, tc.same)
			}
		})
	}
}

// TestFingerprintParamOrder checks that two maps holding the same
// entries fingerprint identically regardless of construction order.
func TestFingerprintParamOrder(t *testing.T) {
	a := baseSpec()
	a.Params = map[string]int64{}
	b := baseSpec()
	b.Params = map[string]int64{}
	keys := []string{"N", "M", "K", "J", "H", "G"}
	for i, k := range keys {
		a.Params[k] = int64(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Params[keys[i]] = int64(i)
	}
	if mustFP(t, a) != mustFP(t, b) {
		t.Errorf("param insertion order changed the fingerprint")
	}
}

func TestFingerprintRejectsUnlexableSource(t *testing.T) {
	s := baseSpec()
	s.Source = "parallel for i = 0..N { A[i] = B[i] ; }" // ';' is not a token
	if _, err := s.Fingerprint(); err == nil {
		t.Fatalf("expected error for unlexable source")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("k1"); ok {
		t.Fatalf("unexpected hit on empty cache")
	}
	c.Put("k1", []byte("plan-1"))
	got, ok := c.Get("k1")
	if !ok || string(got) != "plan-1" {
		t.Fatalf("Get(k1) = %q, %v; want plan-1, true", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheCopiesValues(t *testing.T) {
	c := New(8)
	v := []byte("original")
	c.Put("k", v)
	v[0] = 'X' // caller mutates after Put
	got, _ := c.Get("k")
	if string(got) != "original" {
		t.Fatalf("Put did not copy: got %q", got)
	}
	got[0] = 'Y' // caller mutates the returned slice
	again, _ := c.Get("k")
	if string(again) != "original" {
		t.Fatalf("Get did not copy: got %q", again)
	}
}

// TestPutReportsInsertion: Put's return value distinguishes a new
// entry from a refresh, so cache-warming callers (jobqueue replay)
// can count genuine additions.
func TestPutReportsInsertion(t *testing.T) {
	c := New(8)
	if !c.Put("k", []byte("v1")) {
		t.Error("first Put reported no insertion")
	}
	if c.Put("k", []byte("v2")) {
		t.Error("refreshing Put reported an insertion")
	}
	if !c.Put("k2", []byte("v3")) {
		t.Error("distinct-key Put reported no insertion")
	}
}

func TestCacheUpdateRefreshesValue(t *testing.T) {
	c := New(8)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	got, _ := c.Get("k")
	if string(got) != "v2" {
		t.Fatalf("got %q, want v2", got)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestCacheEvictsAtCapacity(t *testing.T) {
	const capacity = 64
	c := New(capacity)
	n := capacity * 4
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("Len = %d after %d inserts, want <= %d", got, n, capacity)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Entries+int(st.Evictions) != n {
		t.Errorf("entries(%d) + evictions(%d) != inserts(%d)", st.Entries, st.Evictions, n)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// A capacity-16 cache has 1-entry shards: two keys in the same
	// shard can't coexist, and the newer key must win.
	c := New(16)
	var k1, k2 string
	// Find two keys that land in the same shard.
	s0 := c.shardFor("probe-0")
outer:
	for i := 1; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.shardFor(k) == s0 {
			k1, k2 = "probe-0", k
			break outer
		}
	}
	c.Put(k1, []byte("a"))
	c.Put(k2, []byte("b"))
	if _, ok := c.Get(k1); ok {
		t.Errorf("oldest entry %q survived a same-shard insert at capacity 1", k1)
	}
	if v, ok := c.Get(k2); !ok || string(v) != "b" {
		t.Errorf("newest entry %q lost: %q, %v", k2, v, ok)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run
// under -race it proves the sharded locking is sound.
func TestCacheConcurrent(t *testing.T) {
	c := New(128)
	const goroutines = 16
	const ops = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key-%d", (g*ops+i)%200)
				if i%3 == 0 {
					c.Put(key, []byte(key))
				} else if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("Get(%q) = %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("Len = %d, want <= 128", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatalf("no Get traffic recorded: %+v", st)
	}
}

// TestShardStatsSumToTotals: the per-shard accessor (what the metrics
// collectors sample) must partition the aggregate Stats exactly.
func TestShardStatsSumToTotals(t *testing.T) {
	c := New(64)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		c.Get(key) // miss
		c.Put(key, []byte(key))
		c.Get(key) // hit
	}
	if n := c.NumShards(); n <= 0 {
		t.Fatalf("NumShards = %d", n)
	}
	var sum Stats
	for i := 0; i < c.NumShards(); i++ {
		st := c.ShardStat(i)
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Entries += st.Entries
		sum.Capacity += st.Capacity
	}
	if total := c.Stats(); sum != total {
		t.Errorf("shard sum %+v != aggregate %+v", sum, total)
	}
}

func TestTierTagLifecycle(t *testing.T) {
	c := New(8)
	c.PutTier("k", []byte("analytical"), "estimate")
	e, ok := c.GetEntry("k")
	if !ok || e.Tier != "estimate" || string(e.Payload) != "analytical" {
		t.Fatalf("GetEntry = %+v, %v", e, ok)
	}
	// Get sees the same entry without the tag.
	if v, ok := c.Get("k"); !ok || string(v) != "analytical" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Untagged Put clears the tier: the legacy path owns the entry now.
	c.Put("k", []byte("legacy"))
	if e, _ := c.GetEntry("k"); e.Tier != "" || string(e.Payload) != "legacy" {
		t.Errorf("after Put: %+v", e)
	}
}

func TestUpgradeInPlace(t *testing.T) {
	c := New(8)
	if c.Stats().TierUpgrades != 0 {
		t.Fatal("fresh cache reports upgrades")
	}
	c.PutTier("k", []byte("analytical"), "estimate")
	if !c.Upgrade("k", []byte("checked"), "verified") {
		t.Fatal("Upgrade of a present key reported absence")
	}
	e, ok := c.GetEntry("k")
	if !ok || e.Tier != "verified" || string(e.Payload) != "checked" {
		t.Fatalf("after upgrade: %+v, %v", e, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Upgrade duplicated the entry: len = %d", c.Len())
	}
	if got := c.Stats().TierUpgrades; got != 1 {
		t.Errorf("TierUpgrades = %d, want 1", got)
	}
}

func TestUpgradeAfterEvictionInsertsWithoutCounting(t *testing.T) {
	c := New(8)
	// The verified payload must not be thrown away just because the
	// estimate entry was evicted first...
	if c.Upgrade("gone", []byte("checked"), "verified") {
		t.Fatal("Upgrade of a missing key claimed it was present")
	}
	e, ok := c.GetEntry("gone")
	if !ok || e.Tier != "verified" || string(e.Payload) != "checked" {
		t.Fatalf("upgrade-insert lost the value: %+v, %v", e, ok)
	}
	// ...but it is not an in-place upgrade either.
	if got := c.Stats().TierUpgrades; got != 0 {
		t.Errorf("TierUpgrades = %d, want 0", got)
	}
}

func TestShardStatsCountTierUpgrades(t *testing.T) {
	c := New(64)
	const n = 10
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.PutTier(k, []byte("e"), "estimate")
		c.Upgrade(k, []byte("v"), "verified")
	}
	var sum uint64
	for i := 0; i < c.NumShards(); i++ {
		sum += c.ShardStat(i).TierUpgrades
	}
	if sum != n {
		t.Errorf("per-shard upgrades sum = %d, want %d", sum, n)
	}
	if tot := c.Stats().TierUpgrades; tot != n {
		t.Errorf("Stats().TierUpgrades = %d, want %d", tot, n)
	}
}
