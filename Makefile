GO ?= go

# `make check` is the tier-1 CI gate (see ROADMAP.md), enforced by
# .github/workflows/ci.yml: build, formatting, vet, and the full test
# suite under the race detector.
.PHONY: check fmt vet test race build

check: build fmt vet race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
