package estimate

import (
	"math"
	"reflect"
	"testing"

	"locmap/internal/cache"
	"locmap/internal/compiler"
	"locmap/internal/lang"
	"locmap/internal/sim"
	"locmap/internal/topology"
)

const regularSrc = `
param N = 8192
array A[N]
array B[N]
array C[N]
parallel for i = 0..N work 16 {
  A[i] = B[i] + C[i]
}
parallel for i = 0..N work 16 {
  C[i] = A[i]
}
`

const irregularSrc = `
param N = 4096
param M = 65536
array X[M]
array IDX[N]
array OUT[N]
parallel for i = 0..N work 8 {
  OUT[i] = X[IDX[i]]
}
`

// compile mirrors the serving path: compile, bind demo index data,
// validate.
func compile(t *testing.T, src string, opts compiler.Options) *compiler.Result {
	t.Helper()
	res, err := compiler.CompileSource(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	lang.GenerateIndexData(res.Program, 1, 64)
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return res
}

func TestSketchExactDistances(t *testing.T) {
	// Rate 1 samples every line, so the sketch degenerates to an exact
	// LRU stack-distance computation.
	s := NewSketch(1, 16)
	if sampled, dist := s.Access(10); !sampled || !math.IsInf(dist, 1) {
		t.Fatalf("first touch: sampled=%v dist=%v, want sampled +Inf", sampled, dist)
	}
	if _, dist := s.Access(10); dist != 0 {
		t.Errorf("immediate reuse: dist = %v, want 0", dist)
	}
	s.Access(11)
	s.Access(12)
	if _, dist := s.Access(10); dist != 2 {
		t.Errorf("reuse after 2 intervening lines: dist = %v, want 2", dist)
	}
	// 10 is MRU again; 11 is now at depth 2.
	if _, dist := s.Access(11); dist != 2 {
		t.Errorf("LRU order after promotion: dist = %v, want 2", dist)
	}
}

func TestSketchScalesDistanceByRate(t *testing.T) {
	// At rate R, a sampled line's stack position among *sampled* lines
	// is scaled by 1/R to estimate the full-stream distance.
	s := NewSketch(0.5, 1024)
	var probe uint64
	// Find two lines that are both sampled.
	var lines []uint64
	for l := uint64(0); len(lines) < 2 && l < 1000; l++ {
		if sampled, _ := s.Access(l); sampled {
			lines = append(lines, l)
		}
	}
	if len(lines) < 2 {
		t.Fatal("no sampled lines in 1000 tries at rate 0.5")
	}
	probe = lines[0]
	// lines[1] was touched after probe, so probe sits at sampled-stack
	// position 1: estimated distance = 1 * (1/0.5) = 2.
	if _, dist := s.Access(probe); dist != 2 {
		t.Errorf("scaled distance = %v, want 2", dist)
	}
}

func TestSketchStackBound(t *testing.T) {
	s := NewSketch(1, 8)
	for l := uint64(0); l < 100; l++ {
		s.Access(l)
	}
	// Line 0 was evicted from the bounded stack long ago: its reuse
	// saturates to +Inf (a miss), not a bogus finite distance.
	if _, dist := s.Access(0); !math.IsInf(dist, 1) {
		t.Errorf("evicted line dist = %v, want +Inf", dist)
	}
	// The most recent line is still resident.
	if _, dist := s.Access(99); math.IsInf(dist, 1) {
		t.Errorf("resident line dist = +Inf, want finite")
	}
}

func TestSketchSamplingRateAndDeterminism(t *testing.T) {
	const n = 1 << 14
	s := NewSketch(1.0/8, 4096)
	for l := uint64(0); l < n; l++ {
		s.Access(l)
	}
	sampled, total := s.Sampled()
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	frac := float64(sampled) / float64(total)
	if frac < 0.10 || frac > 0.16 {
		t.Errorf("sampling fraction = %g, want ~1/8", frac)
	}

	// Same stream, fresh sketch: byte-identical verdicts (fixed seed).
	s2 := NewSketch(1.0/8, 4096)
	for l := uint64(0); l < n; l++ {
		s2.Access(l)
	}
	if s3, t3 := s2.Sampled(); s3 != sampled || t3 != total {
		t.Errorf("determinism: (%d,%d) vs (%d,%d)", s3, t3, sampled, total)
	}

	s.Reset()
	if sampled, total := s.Sampled(); sampled != 0 || total != 0 {
		t.Errorf("Reset left counters (%d,%d)", sampled, total)
	}
}

func TestFromResultRegularPrivate(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, regularSrc, compiler.Options{Cfg: cfg})
	e := New(Config{Cfg: cfg})
	plan := e.FromResult(res)

	if plan.Program == "" || plan.TimingIters < 1 {
		t.Fatalf("bad plan header: %+v", plan)
	}
	if len(plan.Nests) != 2 {
		t.Fatalf("nests = %d, want 2", len(plan.Nests))
	}
	if plan.Alpha < 0 || plan.Alpha >= 1 {
		t.Errorf("alpha = %g, want [0,1)", plan.Alpha)
	}
	if plan.PredictedCycles <= 0 || plan.BaselineCycles <= 0 {
		t.Errorf("non-positive cycles: %+v", plan)
	}
	for i, ne := range plan.Nests {
		if ne.Irregular {
			t.Errorf("nest %d marked irregular", i)
		}
		if ne.Cores != nil {
			t.Errorf("nest %d: regular nest carries a predicted schedule", i)
		}
		if ne.Sets <= 0 || ne.LLCRefs <= 0 || ne.Cycles <= 0 {
			t.Errorf("nest %d: degenerate estimate %+v", i, ne)
		}
		if ne.EtaM < 0 || ne.EtaC != 0 {
			t.Errorf("nest %d: private-LLC etas = (%g, %g)", i, ne.EtaM, ne.EtaC)
		}
	}
	if len(plan.Legs) != len(sim.LegNames) {
		t.Fatalf("legs = %d, want %d", len(plan.Legs), len(sim.LegNames))
	}
	// A private LLC never speaks to remote banks: only the MC legs may
	// carry predicted traffic.
	for _, leg := range plan.Legs {
		switch leg.Leg {
		case sim.LegNames[sim.LegReqToMC], sim.LegNames[sim.LegMemReply]:
			if leg.Packets <= 0 {
				t.Errorf("leg %s: no predicted traffic", leg.Leg)
			}
			if leg.TotalCycles < 0 || leg.AvgCycles < 0 {
				t.Errorf("leg %s: negative cost %+v", leg.Leg, leg)
			}
		default:
			if leg.Packets != 0 {
				t.Errorf("leg %s: %g packets on a private LLC", leg.Leg, leg.Packets)
			}
		}
	}
}

func TestFromResultDeterministic(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, irregularSrc, compiler.Options{Cfg: cfg})
	p1 := New(Config{Cfg: cfg}).FromResult(res)
	p2 := New(Config{Cfg: cfg}).FromResult(res)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("two estimators disagree on the same compilation:\n%+v\nvs\n%+v", p1, p2)
	}
}

func TestFromResultIrregularPredictsSchedule(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, irregularSrc, compiler.Options{Cfg: cfg})
	if !res.NeedsInspector {
		t.Fatal("irregular source should defer to the inspector")
	}
	e := New(Config{Cfg: cfg})
	plan := e.FromResult(res)
	if len(plan.Nests) != 1 {
		t.Fatalf("nests = %d, want 1", len(plan.Nests))
	}
	ne := plan.Nests[0]
	if !ne.Irregular {
		t.Fatal("nest not marked irregular")
	}
	// The estimator predicts the assignment the inspector would only
	// produce at run time.
	if len(ne.Cores) != ne.Sets {
		t.Fatalf("predicted schedule covers %d of %d sets", len(ne.Cores), ne.Sets)
	}
	nodes := cfg.Mesh.NumNodes()
	for k, c := range ne.Cores {
		if c < 0 || c >= nodes {
			t.Fatalf("set %d assigned to core %d outside [0,%d)", k, c, nodes)
		}
	}
	if ne.Alpha < 0 || ne.Alpha > 1 {
		t.Errorf("alpha = %g", ne.Alpha)
	}
}

func TestFromResultSharedLLC(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.LLCOrg = cache.SharedSNUCA
	res := compile(t, regularSrc, compiler.Options{Cfg: cfg})
	e := New(Config{Cfg: cfg})
	plan := e.FromResult(res)

	for i, ne := range plan.Nests {
		if ne.EtaC < 0 {
			t.Errorf("nest %d: negative shared-LLC η_c", i)
		}
	}
	// Shared misses route core→bank→MC→core: the bank legs must carry
	// the predicted miss traffic the private model never sees.
	var bankReq float64
	for _, leg := range plan.Legs {
		if leg.Leg == sim.LegNames[sim.LegReqToBank] {
			bankReq = leg.Packets
		}
	}
	if bankReq <= 0 {
		t.Errorf("shared LLC predicted no core→bank packets")
	}
}

func TestNewPanicsOnNilMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted a nil mesh")
		}
	}()
	New(Config{})
}

func TestFromAffinitiesRemapsEveryNest(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, regularSrc, compiler.Options{Cfg: cfg})
	affs := New(Config{Cfg: cfg}).Affinities(res)
	if len(affs) != len(res.Plans) {
		t.Fatalf("Affinities returned %d nests, want %d", len(affs), len(res.Plans))
	}
	p1 := New(Config{Cfg: cfg}).FromAffinities(res, affs)
	p2 := New(Config{Cfg: cfg}).FromAffinities(res, affs)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("FromAffinities not deterministic:\n%+v\nvs\n%+v", p1, p2)
	}
	// Unlike FromResult, the remap path derives a schedule for every
	// nest — the placement search needs the co-optimized mapping, not
	// the one compiled against the base chip.
	for i, ne := range p1.Nests {
		if len(ne.Cores) != ne.Sets {
			t.Errorf("nest %d: remapped schedule covers %d of %d sets", i, len(ne.Cores), ne.Sets)
		}
	}
	if p1.PredictedCycles <= 0 || p1.BaselineCycles <= 0 {
		t.Fatalf("degenerate remapped plan: %+v", p1)
	}
}

func TestFromAffinitiesScoresCandidateMesh(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, regularSrc, compiler.Options{Cfg: cfg})
	affs := New(Config{Cfg: cfg}).Affinities(res)
	base := New(Config{Cfg: cfg}).FromAffinities(res, affs)

	// A candidate chip with all four MCs bunched on the top edge: the
	// same affinities scored against different distance tables must
	// yield a different predicted cost (bottom-row cores are now far
	// from every controller).
	mesh2, err := cfg.Mesh.WithMCs([]topology.Coord{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Mesh = mesh2
	cand := New(Config{Cfg: cfg2}).FromAffinities(res, affs)
	if cand.PredictedCycles == base.PredictedCycles {
		t.Errorf("bunched-MC candidate scored identically to corner MCs: %d cycles", cand.PredictedCycles)
	}
}

func TestFromAffinitiesLengthMismatchPanics(t *testing.T) {
	cfg := sim.DefaultConfig()
	res := compile(t, regularSrc, compiler.Options{Cfg: cfg})
	e := New(Config{Cfg: cfg})
	defer func() {
		if recover() == nil {
			t.Error("FromAffinities accepted a mismatched affinity list")
		}
	}()
	e.FromAffinities(res, nil)
}
