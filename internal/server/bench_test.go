package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// BenchmarkEstimateTierServe measures cold fast-tier /v1/map round
// trips through the full handler stack (mux, middleware, estimator,
// cache insert, verify enqueue). Every iteration uses a fresh seed,
// so nothing is answered from the plan cache, and the background
// verification simulations run concurrently exactly as they would in
// production under -fast-tier — the reported tail includes that
// contention. Besides ns/op it reports the p50/p99 request latency in
// milliseconds, which `make bench` records into BENCH_sim.json.
func BenchmarkEstimateTierServe(b *testing.B) {
	s, err := New(Config{FastTier: true, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	h := s.Handler()

	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := mapReq(fastSrc)
		req.Seed = int64(i + 1)
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatalf("marshal: %v", err)
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/map", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(w, r)
		lat = append(lat, time.Since(start).Seconds()*1e3)
		if w.Code != http.StatusOK {
			b.Fatalf("iteration %d: status %d: %s", i, w.Code, w.Body.Bytes())
		}
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(quantileMS(lat, 0.50), "p50-ms")
	b.ReportMetric(quantileMS(lat, 0.99), "p99-ms")
}

// quantileMS reads the q-quantile from an already-sorted latency
// slice (nearest-rank; exact at the sample sizes bench runs use).
func quantileMS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
