package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"locmap/internal/baselines"
	"locmap/internal/inspector"
	"locmap/internal/knl"
	"locmap/internal/sim"
	"locmap/internal/topology"
	"locmap/internal/workloads"
)

// Kind selects what a Job measures.
type Kind int

const (
	// KindApp is the full RunApp evaluation: the default mapping versus
	// the location-aware (or oracle) mapping, plus the ideal-NoC bound
	// when Variant.WithIdeal is set.
	KindApp Kind = iota
	// KindBaseline runs only the default round-robin mapping (and the
	// ideal-NoC bound when Variant.WithIdeal is set) — the Figure 2
	// potential study and the Figure 13 comparison bases. Mapper knobs
	// and Oracle are ignored and excluded from the fingerprint.
	KindBaseline
	// KindHW evaluates the hardware/OS placement of Das et al. [16]
	// (Figure 14). LACycles/LANet hold the HW-schedule measurements;
	// no baseline is run.
	KindHW
	// KindKNL measures one KNL cluster-mode configuration (Figures
	// 16/17): DefCycles holds the measured cycles. The Variant is
	// ignored — the machine comes from knl.Config(KNLMode).
	KindKNL
)

// Job identifies one simulation: an application at an input scale under
// one machine/mapping configuration. A Job is a pure computation — equal
// fingerprints produce equal results — which is what lets the Runner
// deduplicate concurrent requests and memoize completed ones.
type Job struct {
	Kind    Kind
	App     string
	Scale   int
	Variant Variant

	// KNLMode and KNLOpt select the cluster mode and whether the
	// location-aware schedule is applied (KindKNL only).
	KNLMode knl.Mode
	KNLOpt  bool
}

func (j Job) scale() int {
	if j.Scale < 1 {
		return 1
	}
	return j.Scale
}

// Fingerprint returns the canonical memo key for the job: a hex SHA-256
// over the kind, the application and scale, and every sim.Config /
// core.Config field that affects the result (the internal/plancache
// spec-hashing idiom). Fields a kind does not read are excluded, so e.g.
// baseline jobs that differ only in mapper knobs share one key, and a
// nil Mapper.Mesh fingerprints as Cfg.Mesh — exactly what RunApp
// substitutes. A custom Cfg.AddrMap is keyed by pointer identity:
// distinct map objects never alias, at the cost of missing dedup between
// separately built but identical maps.
func (j Job) Fingerprint() string {
	h := sha256.New()
	writeInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeBool := func(b bool) {
		if b {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	writeFloat := func(f float64) {
		writeInt(int64(math.Float64bits(f)))
	}
	writeMesh := func(m *topology.Mesh) {
		if m == nil {
			writeInt(-1)
			return
		}
		writeInt(int64(m.Width))
		writeInt(int64(m.Height))
		writeInt(int64(m.RegionsX))
		writeInt(int64(m.RegionsY))
		writeBool(m.Wrap)
		writeInt(int64(m.Placement))
	}

	writeInt(int64(j.Kind))
	writeStr(j.App)
	writeInt(int64(j.scale()))

	if j.Kind == KindKNL {
		writeInt(int64(j.KNLMode))
		writeBool(j.KNLOpt)
		return hex.EncodeToString(h.Sum(nil))
	}

	cfg := j.Variant.Cfg
	writeMesh(cfg.Mesh)
	writeInt(cfg.NoC.RouterCycles)
	writeInt(cfg.NoC.LinkCycles)
	writeBool(cfg.NoC.Ideal)
	writeInt(int64(cfg.LLCOrg))
	writeInt(int64(cfg.L1Size))
	writeInt(int64(cfg.L1Line))
	writeInt(int64(cfg.L1Ways))
	writeInt(int64(cfg.L2PerCore))
	writeInt(int64(cfg.L2Line))
	writeInt(int64(cfg.L2Ways))
	writeInt(cfg.L1Latency)
	writeInt(cfg.L2Latency)
	writeInt(int64(cfg.PageSize))
	writeStr(cfg.DRAM.Timing.Name)
	writeInt(cfg.DRAM.Timing.RowHit)
	writeInt(cfg.DRAM.Timing.RowConflict)
	writeInt(cfg.DRAM.Timing.RowEmpty)
	writeInt(cfg.DRAM.Timing.Burst)
	writeInt(int64(cfg.DRAM.MCs))
	writeInt(int64(cfg.DRAM.BanksPerMC))
	writeInt(cfg.DRAM.RowBufBytes)
	writeInt(int64(cfg.DRAM.QueueEntries))
	writeInt(int64(cfg.MCGran))
	writeInt(int64(cfg.BankGran))
	writeFloat(cfg.IterSetFrac)
	if cfg.AddrMap != nil {
		writeStr(fmt.Sprintf("%p", cfg.AddrMap))
	} else {
		writeStr("")
	}

	if j.Kind == KindApp || j.Kind == KindBaseline {
		writeBool(j.Variant.WithIdeal)
	}
	if j.Kind == KindApp {
		writeBool(j.Variant.Oracle)
		mc := j.Variant.Mapper
		mesh := mc.Mesh
		if mesh == nil {
			mesh = cfg.Mesh
		}
		writeMesh(mesh)
		writeBool(mc.FineMAC)
		writeInt(int64(mc.Intra))
		writeInt(mc.Seed)
		writeBool(mc.DisableBalance)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// run executes the job. It must remain a pure function of the
// fingerprinted fields: the Runner serves memoized results for equal
// fingerprints without re-running.
func (j Job) run() AppMetrics {
	switch j.Kind {
	case KindBaseline:
		return runBaselineJob(j.App, j.scale(), j.Variant)
	case KindHW:
		return runHWJob(j.App, j.scale(), j.Variant)
	case KindKNL:
		return AppMetrics{Name: j.App, DefCycles: knlExec(j.App, j.scale(), j.KNLMode, j.KNLOpt)}
	default:
		return RunApp(j.App, j.scale(), j.Variant)
	}
}

// runBaselineJob measures the default mapping alone, plus the
// zero-latency-NoC bound when requested.
func runBaselineJob(name string, scale int, v Variant) AppMetrics {
	p := workloads.MustNew(name, scale)
	m := AppMetrics{Name: name, Regular: p.Regular}
	sysD := sim.New(v.Cfg)
	res := inspector.RunBaseline(sysD, p)
	m.DefCycles = sim.TotalCycles(res)
	m.DefNet = sim.TotalNetLatency(res)
	m.LLCMissRate = sysD.Stats().LLCMissRate()
	if v.WithIdeal {
		icfg := v.Cfg
		icfg.NoC.Ideal = true
		m.IdealCycles = sim.TotalCycles(inspector.RunBaseline(sim.New(icfg), p))
	}
	return m
}

// runHWJob measures the hardware/OS placement baseline: the schedule is
// derived on the same system instance that then executes the timed run,
// as in the original Figure 14 harness.
func runHWJob(name string, scale int, v Variant) AppMetrics {
	p := workloads.MustNew(name, scale)
	m := AppMetrics{Name: name, Regular: p.Regular}
	sysH := sim.New(v.Cfg)
	hwSched := baselines.HWSchedule(sysH, p)
	res := sysH.RunTiming(p, func(int) *sim.Schedule { return hwSched })
	m.LACycles = sim.TotalCycles(res)
	m.LANet = sim.TotalNetLatency(res)
	return m
}
