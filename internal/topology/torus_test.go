package topology

import (
	"testing"
	"testing/quick"
)

func torus() *Mesh {
	m := MustNew(6, 6, 3, 3, MCCorners)
	m.Wrap = true
	return m
}

func TestTorusDistanceWraps(t *testing.T) {
	m := torus()
	a := m.NodeAt(Coord{0, 0})
	b := m.NodeAt(Coord{5, 0})
	if d := m.Distance(a, b); d != 1 {
		t.Errorf("wrap distance = %d, want 1", d)
	}
	c := m.NodeAt(Coord{5, 5})
	if d := m.Distance(a, c); d != 2 {
		t.Errorf("corner-to-corner on torus = %d, want 2", d)
	}
	// Mid-distance pairs are unchanged.
	if d := m.Distance(a, m.NodeAt(Coord{3, 0})); d != 3 {
		t.Errorf("distance = %d, want 3", d)
	}
}

func TestTorusRouteLengthMatchesDistance(t *testing.T) {
	m := torus()
	var buf []LinkID
	for a := NodeID(0); a < 36; a++ {
		for b := NodeID(0); b < 36; b++ {
			buf = m.Route(buf[:0], a, b)
			if len(buf) != m.Distance(a, b) {
				t.Fatalf("route %d->%d has %d links, distance %d", a, b, len(buf), m.Distance(a, b))
			}
		}
	}
}

func TestTorusRouteShorterThanMesh(t *testing.T) {
	mesh := Default6x6()
	tor := torus()
	// Across the whole node set, average torus distance must be lower.
	var dm, dt int
	for a := NodeID(0); a < 36; a++ {
		for b := NodeID(0); b < 36; b++ {
			dm += mesh.Distance(a, b)
			dt += tor.Distance(a, b)
			if tor.Distance(a, b) > mesh.Distance(a, b) {
				t.Fatalf("torus distance %d->%d exceeds mesh", a, b)
			}
		}
	}
	if dt >= dm {
		t.Errorf("total torus distance %d should beat mesh %d", dt, dm)
	}
}

func TestTorusDistanceProperties(t *testing.T) {
	m := torus()
	sym := func(a, b uint8) bool {
		na, nb := NodeID(a%36), NodeID(b%36)
		return m.Distance(na, nb) == m.Distance(nb, na)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(a, b, c uint8) bool {
		na, nb, nc := NodeID(a%36), NodeID(b%36), NodeID(c%36)
		return m.Distance(na, nc) <= m.Distance(na, nb)+m.Distance(nb, nc)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusRouteLinksValid(t *testing.T) {
	m := torus()
	var buf []LinkID
	for a := NodeID(0); a < 36; a += 5 {
		for b := NodeID(0); b < 36; b += 7 {
			buf = m.Route(buf[:0], a, b)
			for _, l := range buf {
				if int(l) < 0 || int(l) >= m.NumLinks() {
					t.Fatalf("route %d->%d produced link %d outside [0,%d)", a, b, l, m.NumLinks())
				}
			}
		}
	}
}

func TestMeshRoutingUnaffectedByWrapFlagDefault(t *testing.T) {
	// Sanity: the default mesh (Wrap=false) is unchanged by the torus
	// additions.
	m := Default6x6()
	if m.Wrap {
		t.Fatal("default mesh must not wrap")
	}
	if d := m.Distance(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{5, 0})); d != 5 {
		t.Errorf("mesh distance = %d, want 5", d)
	}
}
