// Package dram models the off-chip memory system behind each memory
// controller: DDR3/DDR4 channels with banks and an open-page row buffer.
// Requests are timed with a small fixed-point model — row-buffer hits pay
// only column access latency, row-buffer conflicts pay precharge +
// activate + column access — plus queueing delay on the bank and channel.
//
// All times are in on-chip-network clock cycles (1 GHz in Table 4), so the
// system simulator can add DRAM service time directly onto packet
// timestamps.
package dram

import "locmap/internal/mem"

// Timing holds the DRAM latency parameters in NoC cycles.
type Timing struct {
	Name string
	// RowHit is the column access latency when the row is open.
	RowHit int64
	// RowConflict is precharge+activate+column when another row is open.
	RowConflict int64
	// RowEmpty is activate+column when the bank has no open row.
	RowEmpty int64
	// Burst is the data transfer (channel occupancy) time per request.
	Burst int64
}

// DDR3 returns DDR3-1333-like timing (Table 4 default).
func DDR3() Timing {
	return Timing{Name: "DDR3-1333", RowHit: 14, RowConflict: 42, RowEmpty: 28, Burst: 4}
}

// DDR4 returns DDR4-2133-like timing (Figure 12 variant): lower device
// latencies and a shorter burst.
func DDR4() Timing {
	return Timing{Name: "DDR4-2133", RowHit: 11, RowConflict: 33, RowEmpty: 22, Burst: 3}
}

// Config describes the memory system shape.
type Config struct {
	Timing       Timing
	MCs          int
	BanksPerMC   int   // Table 4: 8 banks per rank, 1 rank per channel
	RowBufBytes  int64 // Table 4: 2KB row buffer
	QueueEntries int   // request buffer entries per MC (Table 4: 250)
}

// DefaultConfig returns the Table 4 memory system.
func DefaultConfig() Config {
	return Config{Timing: DDR3(), MCs: 4, BanksPerMC: 8, RowBufBytes: 2048, QueueEntries: 250}
}

type bank struct {
	openRow   int64 // -1 when closed
	busyUntil int64
}

type controller struct {
	banks       []bank
	chanBusy    int64 // channel data-bus occupancy
	reqs        uint64
	rowHits     uint64
	rowConfl    uint64
	totalCycles uint64 // sum of service latencies (excl. queueing? incl.)
}

// DRAM is the set of memory controllers.
type DRAM struct {
	cfg Config
	mcs []controller
}

// New builds the memory system.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, mcs: make([]controller, cfg.MCs)}
	for i := range d.mcs {
		d.mcs[i].banks = make([]bank, cfg.BanksPerMC)
		for b := range d.mcs[i].banks {
			d.mcs[i].banks[b].openRow = -1
		}
	}
	return d
}

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// rowOf decodes the row id and bank index of addr within one MC. The bank
// is selected by hashing the row id (the XOR/permutation bank hashes real
// controllers use): a plain modulo would alias with the page-granularity
// MC interleave — the pages owned by one MC are congruent mod NumMCs, so
// `row % banks` would exercise only banks/NumMCs of the banks.
func (d *DRAM) rowOf(addr mem.Addr) (row int64, bankIdx int) {
	r := uint64(addr) / uint64(d.cfg.RowBufBytes)
	h := r
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int64(r), int(h % uint64(d.cfg.BanksPerMC))
}

// Request services a read at `addr` on controller `mc`, arriving at time
// `arrival`, and returns the completion time. Queueing on the target bank
// and the channel data bus is modelled with busy-until bookkeeping.
func (d *DRAM) Request(mc int, addr mem.Addr, arrival int64) int64 {
	c := &d.mcs[mc]
	row, bi := d.rowOf(addr)
	b := &c.banks[bi]

	start := arrival
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var service int64
	switch {
	case b.openRow == row:
		service = d.cfg.Timing.RowHit
		c.rowHits++
	case b.openRow == -1:
		service = d.cfg.Timing.RowEmpty
	default:
		service = d.cfg.Timing.RowConflict
		c.rowConfl++
	}
	b.openRow = row

	ready := start + service
	// The data burst needs the channel bus.
	if c.chanBusy > ready {
		ready = c.chanBusy
	}
	done := ready + d.cfg.Timing.Burst
	c.chanBusy = done
	b.busyUntil = done

	c.reqs++
	c.totalCycles += uint64(done - arrival)
	return done
}

// Stats aggregates counters across controllers.
type Stats struct {
	Requests     uint64
	RowHits      uint64
	RowConflicts uint64
	AvgLatency   float64
}

// Stats returns aggregate statistics since the last Reset.
func (d *DRAM) Stats() Stats {
	var s Stats
	var cycles uint64
	for i := range d.mcs {
		s.Requests += d.mcs[i].reqs
		s.RowHits += d.mcs[i].rowHits
		s.RowConflicts += d.mcs[i].rowConfl
		cycles += d.mcs[i].totalCycles
	}
	if s.Requests > 0 {
		s.AvgLatency = float64(cycles) / float64(s.Requests)
	}
	return s
}

// PerMCRequests returns the request count handled by each controller —
// the load-balance view used when reporting MC pressure.
func (d *DRAM) PerMCRequests() []uint64 {
	out := make([]uint64, len(d.mcs))
	for i := range d.mcs {
		out[i] = d.mcs[i].reqs
	}
	return out
}

// Reset clears all bank state and statistics.
func (d *DRAM) Reset() {
	for i := range d.mcs {
		for b := range d.mcs[i].banks {
			d.mcs[i].banks[b] = bank{openRow: -1}
		}
		d.mcs[i] = controller{banks: d.mcs[i].banks}
	}
}
