GO ?= go

# `make check` is the tier-1 CI gate (see ROADMAP.md), enforced by
# .github/workflows/ci.yml: build, formatting, vet, the full test
# suite under the race detector, and the region-engine determinism
# matrix raced at two pinned GOMAXPROCS values.
.PHONY: check fmt vet test race race-matrix build bench

check: build fmt vet race race-matrix

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-matrix re-runs the region engine's determinism tests under the
# race detector at pinned GOMAXPROCS values, forcing both the starved
# (2) and oversubscribed (8 workers on however many cores) barrier
# interleavings. The golden matrix shrinks to a representative slice
# under race (see internal/experiments/golden_matrix_test.go).
RACE_MATRIX_RUN = 'TestGoldenWorkersMatrix|TestWorkersBitIdentical|TestParallelRunsAreIndependent'
race-matrix:
	GOMAXPROCS=2 $(GO) test -race -run $(RACE_MATRIX_RUN) ./internal/experiments ./internal/sim
	GOMAXPROCS=8 $(GO) test -race -run $(RACE_MATRIX_RUN) ./internal/experiments ./internal/sim

# `make bench` runs the simulator micro-benchmarks (RunNest, NoC send,
# cache access), the RunNest-dominated figure benchmarks, and the
# fast-tier benchmarks (estimate-tier serve p50/p99 latency and the
# estimate-vs-simulation alpha error), and merges the numbers into
# BENCH_sim.json under BENCH_LABEL (default "post"; the checked-in
# "pre" capture is the pre-optimization baseline of PR 3).
# Short smoke run: make bench BENCHTIME_MICRO=1x BENCHTIME_FIG=1x BENCHTIME_EST=5x
#
# A second capture under the "parallel-sim" label pairs the sequential
# RunNest benchmarks with the region engine's workers=1-vs-workers=N
# sub-benchmarks (ParNest*, ParFig07), so in-run speedup and the
# serial-path overhead live in one record.
#
# A third capture under the "placeopt" label records the placement
# search's throughput (candidates/sec through the estimate tier),
# which bounds how many chip layouts one /v1/optimize request can
# afford to score.
#
# A fourth capture under the "tenancy" label records the session
# control loop: co-placement search throughput (candidates/sec, the
# cost of a tenant joining or leaving a group), the telemetry-ingest
# hot path, and the end-to-end remap latency (remap-ms: drift trigger
# to atomic plan swap, one estimate + one verification simulation).
BENCH_LABEL ?= post
BENCH_PAR_LABEL ?= parallel-sim
BENCH_PLACE_LABEL ?= placeopt
BENCH_TEN_LABEL ?= tenancy
BENCHTIME_MICRO ?= 2s
BENCHTIME_FIG ?= 3x
BENCHTIME_EST ?= 50x
BENCHTIME_PLACE ?= 3x
BENCHTIME_TEN ?= 5x
bench:
	@rm -f .bench.out
	$(GO) test -run '^$$' -bench 'RunNest|NoCSend|CacheAccess|CacheLookup' \
		-benchtime $(BENCHTIME_MICRO) -benchmem ./internal/sim ./internal/cache | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig02IdealNetwork|BenchmarkFig07Private|BenchmarkFig08Shared|BenchmarkMultiprogrammed' \
		-benchtime $(BENCHTIME_FIG) -benchmem . | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkEstimateTierServe|BenchmarkEstimateAlphaError' \
		-benchtime $(BENCHTIME_EST) ./internal/server ./internal/estimate | tee -a .bench.out
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -note "$(BENCH_NOTE)" -out BENCH_sim.json < .bench.out
	@rm -f .bench.out .bench.par.out
	$(GO) test -run '^$$' -bench 'RunNestPrivate$$|RunNestShared$$|ParNest' \
		-benchtime $(BENCHTIME_MICRO) -benchmem ./internal/sim | tee -a .bench.par.out
	$(GO) test -run '^$$' -bench 'ParFig07' \
		-benchtime $(BENCHTIME_FIG) -benchmem . | tee -a .bench.par.out
	$(GO) run ./cmd/benchjson -label $(BENCH_PAR_LABEL) -note "$(BENCH_NOTE)" -out BENCH_sim.json < .bench.par.out
	@rm -f .bench.par.out .bench.place.out
	$(GO) test -run '^$$' -bench 'BenchmarkPlaceoptSearch' \
		-benchtime $(BENCHTIME_PLACE) -benchmem ./internal/placeopt | tee -a .bench.place.out
	$(GO) run ./cmd/benchjson -label $(BENCH_PLACE_LABEL) -note "$(BENCH_NOTE)" -out BENCH_sim.json < .bench.place.out
	@rm -f .bench.place.out .bench.ten.out
	$(GO) test -run '^$$' -bench 'BenchmarkCoPlace|BenchmarkIngest' \
		-benchtime $(BENCHTIME_MICRO) -benchmem ./internal/tenancy | tee -a .bench.ten.out
	$(GO) test -run '^$$' -bench 'BenchmarkSessionRemap' \
		-benchtime $(BENCHTIME_TEN) ./internal/server | tee -a .bench.ten.out
	$(GO) run ./cmd/benchjson -label $(BENCH_TEN_LABEL) -note "$(BENCH_NOTE)" -out BENCH_sim.json < .bench.ten.out
	@rm -f .bench.ten.out
