// Package core implements the paper's primary contribution: the
// location-aware assignment of loop-iteration sets to cores.
//
// Algorithm 1 (private LLC) assigns each iteration set to the region whose
// MAC vector is most similar to the set's MAI vector, then balances the
// per-region loads by transferring surplus sets between nearby
// donor/receiver region pairs. Algorithm 2 (shared S-NUCA LLC) replaces
// the per-region error with the α-weighted combination of cache-affinity
// error η_c = Eta(CAI, CAC) and memory-affinity error η_m = Eta(MAI, MAC).
// The load-balancing phase is shared between the two.
//
// Within a region, iteration sets are spread over the region's cores
// randomly but evenly (§3.9); a deterministic round-robin policy is also
// provided, modelling the paper's "let the OS schedule within the region"
// option.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"locmap/internal/affinity"
	"locmap/internal/topology"
)

// IntraPolicy selects how iteration sets assigned to a region are spread
// over the region's cores.
type IntraPolicy int

const (
	// IntraRandom shuffles a region's sets before dealing them out
	// round-robin — the paper's default fine-granularity policy.
	IntraRandom IntraPolicy = iota
	// IntraRoundRobin deals sets out deterministically in set order,
	// approximating the paper's "OS scheduling within region" option.
	IntraRoundRobin
)

// Config parameterizes the mapper.
type Config struct {
	Mesh *topology.Mesh

	// FineMAC switches MAC from the winner-take-all nearest-MC vectors
	// (Figure 6a) to inverse-distance weights — the finer-granularity
	// alternative discussed in §3.9. Ablation use.
	FineMAC bool

	// Intra selects the within-region core assignment policy.
	Intra IntraPolicy

	// Seed drives the IntraRandom shuffle.
	Seed int64

	// DisableBalance turns off the load-balancing phase (ablation).
	DisableBalance bool
}

// Mapper holds precomputed per-region affinity vectors.
//
// All randomness (the IntraRandom shuffle) comes from a per-instance
// *rand.Rand seeded with Config.Seed — no package touches the global
// math/rand state. Two mappers with the same config therefore produce
// identical assignments, independent of what runs on other goroutines.
// The Map* methods mutate that per-instance state, so a single Mapper
// must not be shared by concurrent goroutines; construction is cheap —
// create one per goroutine (as locmapd does per request).
type Mapper struct {
	cfg  Config
	macs []affinity.Vector
	cacs []affinity.Vector
	rng  *rand.Rand
}

// NewMapper builds a mapper for the given configuration.
func NewMapper(cfg Config) *Mapper {
	if cfg.Mesh == nil {
		panic("core: Config.Mesh is nil")
	}
	m := &Mapper{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.FineMAC {
		m.macs = affinity.MACFineAll(cfg.Mesh)
	} else {
		m.macs = affinity.MACAll(cfg.Mesh)
	}
	m.cacs = affinity.CACAll(cfg.Mesh)
	return m
}

// MAC returns the per-region memory affinity vectors in use.
func (m *Mapper) MAC() []affinity.Vector { return m.macs }

// CAC returns the per-region cache affinity vectors.
func (m *Mapper) CAC() []affinity.Vector { return m.cacs }

// Assignment is the result of mapping one parallel nest.
type Assignment struct {
	// Region[k] is the region iteration set k was assigned to.
	Region []topology.RegionID
	// Core[k] is the core iteration set k runs on.
	Core []topology.NodeID
	// Moved counts sets transferred by the load-balancing phase.
	Moved int
	// TotalError is the summed per-set affinity error after balancing —
	// the objective Algorithms 1/2 minimize subject to balance.
	TotalError float64
}

// FracMoved returns Moved as a fraction of all sets (Table 3's last
// column).
func (a *Assignment) FracMoved() float64 {
	if len(a.Region) == 0 {
		return 0
	}
	return float64(a.Moved) / float64(len(a.Region))
}

// RegionCounts returns how many sets each region received.
func (a *Assignment) RegionCounts(numRegions int) []int {
	counts := make([]int, numRegions)
	for _, r := range a.Region {
		counts[r]++
	}
	return counts
}

// errPrivate is Algorithm 1's per-set, per-region error: η(MAI, MAC).
func (m *Mapper) errPrivate(s *affinity.SetAffinity, r int) float64 {
	return affinity.Eta(s.MAI, m.macs[r])
}

// errShared is Algorithm 2's combined error: α·η(CAI,CAC) + (1−α)·η(MAI,MAC).
func (m *Mapper) errShared(s *affinity.SetAffinity, r int) float64 {
	em := affinity.Eta(s.MAI, m.macs[r])
	ec := affinity.Eta(s.CAI, m.cacs[r])
	return s.Alpha*ec + (1-s.Alpha)*em
}

// MapPrivate runs Algorithm 1 over the iteration sets of one nest.
func (m *Mapper) MapPrivate(sets []affinity.SetAffinity) *Assignment {
	return m.mapWith(sets, m.errPrivate)
}

// MapShared runs Algorithm 2 over the iteration sets of one nest. Every
// set must carry a CAI vector sized to the region count.
func (m *Mapper) MapShared(sets []affinity.SetAffinity) *Assignment {
	for i := range sets {
		if len(sets[i].CAI) != m.cfg.Mesh.NumRegions() {
			panic(fmt.Sprintf("core: set %d CAI has %d entries, want %d",
				i, len(sets[i].CAI), m.cfg.Mesh.NumRegions()))
		}
	}
	return m.mapWith(sets, m.errShared)
}

func (m *Mapper) mapWith(sets []affinity.SetAffinity, errFn func(*affinity.SetAffinity, int) float64) *Assignment {
	nr := m.cfg.Mesh.NumRegions()
	a := &Assignment{
		Region: make([]topology.RegionID, len(sets)),
		Core:   make([]topology.NodeID, len(sets)),
	}
	// The per-set × per-region error table, computed once. Phase 1
	// needs every entry anyway; precomputing turns the balancing inner
	// loop (which used to recompute Eta per candidate per transfer)
	// and the final objective into array lookups, without changing a
	// single value — locmapd's fast tier runs this on every request.
	errTab := make([]float64, len(sets)*nr)
	for k := range sets {
		row := errTab[k*nr : (k+1)*nr : (k+1)*nr]
		for r := 0; r < nr; r++ {
			row[r] = errFn(&sets[k], r)
		}
	}
	errAt := func(k, r int) float64 { return errTab[k*nr+r] }
	// Phase 1: per-set argmin over regions (Algorithm 1 lines 8–14).
	for k := range sets {
		best, bi := math.Inf(1), 0
		for r := 0; r < nr; r++ {
			if e := errAt(k, r); e < best {
				best, bi = e, r
			}
		}
		a.Region[k] = topology.RegionID(bi)
	}
	// Phase 2: location-aware load balancing (lines 15–24).
	if !m.cfg.DisableBalance {
		a.Moved = m.balance(len(sets), a.Region, errAt)
	}
	for k := range sets {
		a.TotalError += errAt(k, int(a.Region[k]))
	}
	// Phase 3: within-region fine-granularity core assignment (§3.9).
	m.assignCores(a)
	return a
}

// balance transfers surplus iteration sets from over-loaded (donor)
// regions to under-loaded (receiver) regions, preferring close-by
// donor/receiver pairs, until every region is within one set of the
// average. Returns the number of sets moved.
func (m *Mapper) balance(numSets int, region []topology.RegionID, errAt func(k, r int) float64) int {
	nr := m.cfg.Mesh.NumRegions()
	counts := make([]int, nr)
	byRegion := make([][]int, nr) // set ids per region
	for k, r := range region {
		counts[r]++
		byRegion[r] = append(byRegion[r], k)
	}
	// Exact targets: every region ends with base or base+1 sets. The
	// regions that already hold the most sets keep the +1, minimizing
	// the number of transfers.
	base := numSets / nr
	extra := numSets % nr
	order := make([]int, nr)
	for r := range order {
		order[r] = r
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
	target := make([]int, nr)
	for i, r := range order {
		target[r] = base
		if i < extra {
			target[r] = base + 1
		}
	}

	// Build the NBGH pair list: every (donor, receiver) pair ordered by
	// region-to-region distance (SORTED_NBGH in Algorithm 1).
	type pair struct {
		donor, recv int
		dist        int
	}
	var pairs []pair
	for d := 0; d < nr; d++ {
		if counts[d] <= target[d] {
			continue
		}
		for r := 0; r < nr; r++ {
			if counts[r] >= target[r] || r == d {
				continue
			}
			pairs = append(pairs, pair{d, r, m.cfg.Mesh.RegionDistance(topology.RegionID(d), topology.RegionID(r))})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].dist < pairs[j].dist })

	moved := 0
	for _, p := range pairs {
		for counts[p.donor] > target[p.donor] && counts[p.recv] < target[p.recv] {
			// Move the donor set whose error increases least when
			// re-homed to the receiver: the transfer stays as
			// location-friendly as possible.
			bestIdx, bestDelta := -1, math.Inf(1)
			for idx, k := range byRegion[p.donor] {
				delta := errAt(k, p.recv) - errAt(k, p.donor)
				if delta < bestDelta {
					bestDelta, bestIdx = delta, idx
				}
			}
			if bestIdx < 0 {
				break
			}
			k := byRegion[p.donor][bestIdx]
			last := len(byRegion[p.donor]) - 1
			byRegion[p.donor][bestIdx] = byRegion[p.donor][last]
			byRegion[p.donor] = byRegion[p.donor][:last]
			byRegion[p.recv] = append(byRegion[p.recv], k)
			region[k] = topology.RegionID(p.recv)
			counts[p.donor]--
			counts[p.recv]++
			moved++
		}
	}
	return moved
}

// assignCores distributes each region's sets over the region's cores.
func (m *Mapper) assignCores(a *Assignment) {
	nr := m.cfg.Mesh.NumRegions()
	byRegion := make([][]int, nr)
	for k, r := range a.Region {
		byRegion[r] = append(byRegion[r], k)
	}
	// Re-seed per nest so every mapping drawn from this instance sees
	// the same shuffle stream a fresh Mapper would — assignments stay
	// reproducible per call, not dependent on how many nests were
	// mapped before.
	m.rng.Seed(m.cfg.Seed)
	for r := 0; r < nr; r++ {
		ids := byRegion[r]
		if m.cfg.Intra == IntraRandom {
			m.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		}
		cores := m.cfg.Mesh.RegionNodes(topology.RegionID(r))
		for i, k := range ids {
			a.Core[k] = cores[i%len(cores)]
		}
	}
}

// DefaultSchedule returns the baseline round-robin assignment the paper
// compares against: iteration set k runs on core k mod P, with no location
// information.
func DefaultSchedule(mesh *topology.Mesh, numSets int) *Assignment {
	a := &Assignment{
		Region: make([]topology.RegionID, numSets),
		Core:   make([]topology.NodeID, numSets),
	}
	p := mesh.NumNodes()
	for k := 0; k < numSets; k++ {
		c := topology.NodeID(k % p)
		a.Core[k] = c
		a.Region[k] = mesh.RegionOf(c)
	}
	return a
}
