// Package mem defines the physical address map of the simulated manycore:
// how a physical address is decoded into a memory-controller id (page- or
// cacheline-granularity interleaving) and into a home LLC bank id
// (cacheline- or page-granularity interleaving) for shared S-NUCA caches.
//
// The paper's compiler relies on an OS guarantee that the virtual-address
// bits selecting the MC and the LLC bank survive virtual-to-physical
// translation, so the compiler can decode them statically. We model that
// guarantee with an identity VA→PA mapping: every Map in this package is
// applied directly to program addresses.
package mem

import "fmt"

// Addr is a (physical == virtual) byte address.
type Addr uint64

// Granularity selects the unit at which addresses are interleaved across
// MCs or LLC banks.
type Granularity int

const (
	// GranPage interleaves at page granularity (the paper's default for
	// memory banks: "page granularity round robin for banks").
	GranPage Granularity = iota
	// GranCacheLine interleaves at LLC-line granularity (the paper's
	// default for cache banks: "cache line granularity round robin").
	GranCacheLine
)

func (g Granularity) String() string {
	switch g {
	case GranPage:
		return "page"
	case GranCacheLine:
		return "cacheline"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Map decodes addresses into MC ids and home-LLC-bank ids.
type Map interface {
	// MC returns the memory controller an LLC miss to addr is routed to.
	MC(addr Addr) int
	// HomeBank returns the S-NUCA home LLC bank of addr.
	HomeBank(addr Addr) int
	// NumMCs and NumBanks report the sizes of the two interleave spaces.
	NumMCs() int
	NumBanks() int
}

// Interleaved is the default round-robin address map of Table 4: pages
// round-robin across MCs and cache lines round-robin across LLC banks,
// with both granularities configurable (Figure 11 sweeps the four
// combinations).
type Interleaved struct {
	PageSize int // bytes; 2KB default, 8KB in the Figure 9 sweep
	LineSize int // LLC line size; 64 bytes

	MCs   int
	Banks int

	MCGran   Granularity // unit of MC interleaving
	BankGran Granularity // unit of LLC-bank interleaving
}

// NewInterleaved returns the default (cacheline, page) distribution of the
// paper: MCs interleaved by page, banks interleaved by cache line.
func NewInterleaved(pageSize, lineSize, mcs, banks int) *Interleaved {
	return &Interleaved{
		PageSize: pageSize,
		LineSize: lineSize,
		MCs:      mcs,
		Banks:    banks,
		MCGran:   GranPage,
		BankGran: GranCacheLine,
	}
}

func (m *Interleaved) gran(g Granularity) Addr {
	if g == GranPage {
		return Addr(m.PageSize)
	}
	return Addr(m.LineSize)
}

// MC implements Map.
func (m *Interleaved) MC(addr Addr) int {
	return int((addr / m.gran(m.MCGran)) % Addr(m.MCs))
}

// HomeBank implements Map.
func (m *Interleaved) HomeBank(addr Addr) int {
	return int((addr / m.gran(m.BankGran)) % Addr(m.Banks))
}

// NumMCs implements Map.
func (m *Interleaved) NumMCs() int { return m.MCs }

// NumBanks implements Map.
func (m *Interleaved) NumBanks() int { return m.Banks }

// Page returns the page number of addr under this map's page size.
func (m *Interleaved) Page(addr Addr) Addr { return addr / Addr(m.PageSize) }

// Line returns the LLC line number of addr.
func (m *Interleaved) Line(addr Addr) Addr { return addr / Addr(m.LineSize) }

// Overlay wraps a base Map with per-page MC overrides. It models data
// layout transformations (the DO scheme of Figure 13) that relocate a
// page's physical placement without touching the rest of the map.
type Overlay struct {
	Base     Map
	PageSize int
	// PageMC maps page number -> MC id for relocated pages.
	PageMC map[Addr]int
}

// NewOverlay creates an overlay with no relocations.
func NewOverlay(base Map, pageSize int) *Overlay {
	return &Overlay{Base: base, PageSize: pageSize, PageMC: make(map[Addr]int)}
}

// Relocate pins every address of page to MC mc.
func (o *Overlay) Relocate(page Addr, mc int) { o.PageMC[page] = mc }

// MC implements Map.
func (o *Overlay) MC(addr Addr) int {
	if mc, ok := o.PageMC[addr/Addr(o.PageSize)]; ok {
		return mc
	}
	return o.Base.MC(addr)
}

// HomeBank implements Map.
func (o *Overlay) HomeBank(addr Addr) int { return o.Base.HomeBank(addr) }

// NumMCs implements Map.
func (o *Overlay) NumMCs() int { return o.Base.NumMCs() }

// NumBanks implements Map.
func (o *Overlay) NumBanks() int { return o.Base.NumBanks() }

// BankSubset restricts the S-NUCA home-bank space of a base map to an
// explicit list of mesh nodes: line i of the base bank interleave is
// homed at Nodes[i % len(Nodes)]. It models chips whose shared-LLC
// capacity is concentrated on a subset of tiles — the bank half of the
// placement space /v1/optimize searches. HomeBank returns *node ids*
// (members of Nodes), so NumBanks reports Span, the size of the
// node-id space, not the subset length; consumers that index per-bank
// state by node (cache.LLC, the estimator) work unchanged.
type BankSubset struct {
	Base  Map
	Nodes []int // node ids hosting home banks, in interleave order
	Span  int   // node-id space size (mesh node count)
}

// NewBankSubset builds a bank-subset map over base. nodes must be
// non-empty with every id in [0, span).
func NewBankSubset(base Map, nodes []int, span int) *BankSubset {
	if len(nodes) == 0 {
		panic("mem: BankSubset needs at least one node")
	}
	for _, n := range nodes {
		if n < 0 || n >= span {
			panic(fmt.Sprintf("mem: BankSubset node %d outside [0,%d)", n, span))
		}
	}
	return &BankSubset{Base: base, Nodes: append([]int(nil), nodes...), Span: span}
}

// MC implements Map.
func (b *BankSubset) MC(addr Addr) int { return b.Base.MC(addr) }

// HomeBank implements Map.
func (b *BankSubset) HomeBank(addr Addr) int {
	return b.Nodes[b.Base.HomeBank(addr)%len(b.Nodes)]
}

// NumMCs implements Map.
func (b *BankSubset) NumMCs() int { return b.Base.NumMCs() }

// NumBanks implements Map.
func (b *BankSubset) NumBanks() int { return b.Span }

// HashFunc adapts arbitrary address-decoding functions to the Map
// interface. The KNL cluster modes (all-to-all, quadrant, SNC-4) are
// expressed as HashFuncs over the same simulator.
type HashFunc struct {
	MCFn    func(Addr) int
	BankFn  func(Addr) int
	MCCount int
	Banks   int
}

// MC implements Map.
func (h HashFunc) MC(addr Addr) int { return h.MCFn(addr) }

// HomeBank implements Map.
func (h HashFunc) HomeBank(addr Addr) int { return h.BankFn(addr) }

// NumMCs implements Map.
func (h HashFunc) NumMCs() int { return h.MCCount }

// NumBanks implements Map.
func (h HashFunc) NumBanks() int { return h.Banks }
