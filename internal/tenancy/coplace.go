package tenancy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"locmap/internal/affinity"
	"locmap/internal/core"
	"locmap/internal/topology"
)

// Co-placement: N tenants share one mesh, and the scheduler must
// decide which cores each tenant owns. The multiprogrammed study
// (internal/experiments/multiprog.go) fixes this by striding cores
// round-robin across tenants — every tenant owns a thin slice of every
// region, so every tenant's memory traffic crosses every other
// tenant's. Co-placement instead treats the partition itself as the
// search space: a greedy seed places each tenant's cores near the
// memory controllers its affinity vectors point at, and a simulated
// annealing pass (the internal/placeopt move machinery, with swaps
// between tenants as the mutation) refines the partition against an
// objective with an explicit cross-tenant interference term over the
// shared NoC links and memory controllers — the CODA-style
// co-location objective (PAPERS.md).
//
// The objective is analytical and deliberately cheap (no simulation):
//
//	cost = locality + λ·interference
//
// where locality is each tenant's demand-weighted mean hop count from
// its cores to the MCs it misses to, and interference is the pairwise
// product of per-link (and per-MC) loads across tenants — the
// Σ_r Σ_{t≠u} L_t(r)·L_u(r) contention form, which is zero exactly
// when no two tenants share a link or controller. Per-tenant demand
// is extracted once from the affinity vectors (estimate.Affinities),
// so one CoPlace call is thousands of pure arithmetic evaluations.

// Co-placement defaults and bounds.
const (
	DefaultCoPlaceRounds = 512
	MaxCoPlaceRounds     = 20000

	// coplaceTempFrac / coplaceCoolRatio mirror placeopt's annealing
	// schedule: initial temperature as a fraction of the seed cost,
	// total geometric decay over the round budget.
	coplaceTempFrac  = 0.05
	coplaceCoolRatio = 1e-3
)

// Tenant is one session's workload in a shared-mesh group.
type Tenant struct {
	// ID names the tenant in the resulting placement.
	ID string

	// Affs is the workload's per-nest set affinities
	// (estimate.Estimator.Affinities): the demand extraction walks
	// every set's MAI and α.
	Affs [][]affinity.SetAffinity

	// Weight scales the tenant's demand (default 1). The epoch
	// controller sets it from observed telemetry: a tenant measured
	// more memory-bound than predicted pushes harder on the shared
	// resources and gets pulled closer to its controllers.
	Weight float64
}

// CoPlaceConfig parameterizes CoPlace.
type CoPlaceConfig struct {
	// Mesh is the shared machine. Required.
	Mesh *topology.Mesh

	// Rounds bounds the annealing evaluations after the seeds
	// (default DefaultCoPlaceRounds, capped at MaxCoPlaceRounds).
	Rounds int

	// Seed drives the annealing PRNG. The search is sequential and
	// seeded: a fixed seed gives identical partitions on every run.
	Seed int64

	// Lambda weights the interference term against locality (default:
	// the mesh diameter W+H, putting one unit of pairwise overlap on
	// the scale of a worst-case hop count).
	Lambda float64
}

// TenantPlacement is one tenant's share of the mesh.
type TenantPlacement struct {
	ID    string            `json:"id"`
	Cores []topology.NodeID `json:"cores"`
}

// Score is the objective breakdown of one partition.
type Score struct {
	// Locality is the summed demand-weighted mean hop count from each
	// tenant's cores to its controllers.
	Locality float64 `json:"locality"`

	// Interference is the cross-tenant contention term: pairwise
	// products of per-link and per-MC loads, summed over the shared
	// resources. Zero iff no link or controller is shared.
	Interference float64 `json:"interference"`

	// Cost is Locality + λ·Interference, the annealed objective.
	Cost float64 `json:"cost"`
}

// Placement is a finished co-placement: the partition, its score, and
// the independent-mapping baseline (the multiprog strided partition)
// scored under the same objective for comparison.
type Placement struct {
	Tenants []TenantPlacement `json:"tenants"`

	Score Score `json:"score"`

	// Baseline scores the strided independent partition — what each
	// tenant gets when placed with no knowledge of its co-tenants.
	Baseline Score `json:"baseline"`

	// Evaluated counts scored partitions (seeds + annealing moves).
	Evaluated int `json:"evaluated"`
}

// demand is one tenant's extracted traffic model: per-MC miss volume
// plus total volume, normalized so Σ mc = Weight.
type demand struct {
	id    string
	perMC []float64
	total float64 // pre-normalization volume, the greedy ordering key
}

// extractDemand folds a tenant's affinity vectors into per-MC demand:
// each set contributes Weight·(1−α) split over MCs by its MAI (uniform
// when the set recorded no misses).
func extractDemand(t *Tenant, numMC int) demand {
	d := demand{id: t.ID, perMC: make([]float64, numMC)}
	for _, nest := range t.Affs {
		for i := range nest {
			sa := &nest[i]
			vol := float64(sa.Weight) * (1 - sa.Alpha)
			if vol <= 0 {
				continue
			}
			d.total += vol
			if len(sa.MAI) == numMC && sa.MAI.Sum() > 0 {
				for mc, w := range sa.MAI {
					d.perMC[mc] += vol * w
				}
			} else {
				for mc := range d.perMC {
					d.perMC[mc] += vol / float64(numMC)
				}
			}
		}
	}
	w := t.Weight
	if w <= 0 {
		w = 1
	}
	sum := 0.0
	for _, v := range d.perMC {
		sum += v
	}
	if sum > 0 {
		for mc := range d.perMC {
			d.perMC[mc] *= w / sum
		}
	} else {
		for mc := range d.perMC {
			d.perMC[mc] = w / float64(numMC)
		}
	}
	d.total *= w
	return d
}

// StridedPartition deals the mesh's cores round-robin over n tenants
// (core i belongs to tenant i mod n) — the multiprog study's
// partition, and co-placement's independent-mapping baseline.
func StridedPartition(mesh *topology.Mesh, n int) [][]topology.NodeID {
	out := make([][]topology.NodeID, n)
	for c := 0; c < mesh.NumNodes(); c++ {
		out[c%n] = append(out[c%n], topology.NodeID(c))
	}
	return out
}

// CoPlace partitions the mesh's cores over the tenants, minimizing
// locality + λ·interference. Partition sizes are fixed (equal shares,
// remainder to the heaviest tenants); the search only permutes which
// cores each tenant owns. Deterministic for a fixed Seed.
func CoPlace(cfg CoPlaceConfig, tenants []Tenant) (*Placement, error) {
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("tenancy: CoPlaceConfig.Mesh is nil")
	}
	n := len(tenants)
	if n == 0 {
		return nil, fmt.Errorf("tenancy: no tenants to place")
	}
	if n > cfg.Mesh.NumNodes() {
		return nil, fmt.Errorf("tenancy: %d tenants exceed %d cores", n, cfg.Mesh.NumNodes())
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultCoPlaceRounds
	}
	if cfg.Rounds > MaxCoPlaceRounds {
		cfg.Rounds = MaxCoPlaceRounds
	}
	sc := newScorer(cfg.Mesh, tenants, cfg.Lambda)

	// Seeds: the affinity-greedy partition and the strided baseline.
	// The incumbent starts at the better of the two, so the result is
	// never worse (on the objective) than independent placement.
	greedy := sc.greedySeed()
	strided := StridedPartition(cfg.Mesh, n)
	baseline := sc.score(strided)
	greedyScore := sc.score(greedy)
	evaluated := 2

	best, bestScore := greedy, greedyScore
	if baseline.Cost < bestScore.Cost {
		best, bestScore = clonePartition(strided), baseline
	}

	// Annealing refinement: swap one core between two tenants, accept
	// uphill moves with geometrically cooling probability (the
	// placeopt schedule).
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := clonePartition(best)
	curScore := bestScore
	temp := coplaceTempFrac * bestScore.Cost
	if temp <= 0 {
		temp = 1
	}
	cool := math.Pow(coplaceCoolRatio, 1/float64(cfg.Rounds))
	if n > 1 {
		for r := 0; r < cfg.Rounds; r++ {
			ti := rng.Intn(n)
			tj := rng.Intn(n - 1)
			if tj >= ti {
				tj++
			}
			ci := rng.Intn(len(cur[ti]))
			cj := rng.Intn(len(cur[tj]))
			cur[ti][ci], cur[tj][cj] = cur[tj][cj], cur[ti][ci]
			s := sc.score(cur)
			evaluated++
			if s.Cost <= curScore.Cost || rng.Float64() < math.Exp(-(s.Cost-curScore.Cost)/temp) {
				curScore = s
				if s.Cost < bestScore.Cost {
					best, bestScore = clonePartition(cur), s
				}
			} else {
				cur[ti][ci], cur[tj][cj] = cur[tj][cj], cur[ti][ci] // revert
			}
			temp *= cool
		}
	}

	out := &Placement{
		Score:     bestScore,
		Baseline:  baseline,
		Evaluated: evaluated,
	}
	for i, t := range tenants {
		cores := append([]topology.NodeID(nil), best[i]...)
		sort.Slice(cores, func(a, b int) bool { return cores[a] < cores[b] })
		out.Tenants = append(out.Tenants, TenantPlacement{ID: t.ID, Cores: cores})
	}
	return out, nil
}

func clonePartition(p [][]topology.NodeID) [][]topology.NodeID {
	out := make([][]topology.NodeID, len(p))
	for i := range p {
		out[i] = append([]topology.NodeID(nil), p[i]...)
	}
	return out
}

// scorer evaluates partitions against the shared-resource objective.
// It precomputes per-tenant demand, node→MC distances and routes once.
type scorer struct {
	mesh    *topology.Mesh
	demands []demand
	lambda  float64

	mcNodes []topology.NodeID
	rt      *topology.RouteTable

	// linkLoad is scratch: per-link per-tenant load, reused across
	// score calls ([tenant][link]).
	linkLoad [][]float64
	mcLoad   [][]float64
}

func newScorer(mesh *topology.Mesh, tenants []Tenant, lambda float64) *scorer {
	numMC := mesh.NumMCs()
	sc := &scorer{
		mesh:   mesh,
		lambda: lambda,
		rt:     mesh.NewRouteTable(),
	}
	if sc.lambda <= 0 {
		sc.lambda = float64(mesh.Width + mesh.Height)
	}
	for i := range tenants {
		sc.demands = append(sc.demands, extractDemand(&tenants[i], numMC))
	}
	for mc := 0; mc < numMC; mc++ {
		sc.mcNodes = append(sc.mcNodes, mesh.MCNode(topology.MCID(mc)))
	}
	sc.linkLoad = make([][]float64, len(tenants))
	sc.mcLoad = make([][]float64, len(tenants))
	for i := range tenants {
		sc.linkLoad[i] = make([]float64, mesh.NumLinks())
		sc.mcLoad[i] = make([]float64, numMC)
	}
	return sc
}

// greedySeed builds the affinity-seeded partition: tenants in
// descending demand volume pick their quota of free cores in
// ascending demand-weighted MC distance — each tenant clusters around
// the controllers it actually misses to.
func (sc *scorer) greedySeed() [][]topology.NodeID {
	n := len(sc.demands)
	nodes := sc.mesh.NumNodes()
	quota := make([]int, n)
	for i := range quota {
		quota[i] = nodes / n
	}
	// Remainder cores go to the heaviest tenants.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sc.demands[order[a]].total > sc.demands[order[b]].total
	})
	for i := 0; i < nodes%n; i++ {
		quota[order[i]]++
	}

	free := make([]bool, nodes)
	for i := range free {
		free[i] = true
	}
	out := make([][]topology.NodeID, n)
	for _, ti := range order {
		d := &sc.demands[ti]
		type rank struct {
			node topology.NodeID
			cost float64
		}
		ranks := make([]rank, 0, nodes)
		for c := 0; c < nodes; c++ {
			if !free[c] {
				continue
			}
			cost := 0.0
			for mc, w := range d.perMC {
				cost += w * float64(sc.mesh.Distance(topology.NodeID(c), sc.mcNodes[mc]))
			}
			ranks = append(ranks, rank{topology.NodeID(c), cost})
		}
		sort.SliceStable(ranks, func(a, b int) bool {
			if ranks[a].cost != ranks[b].cost {
				return ranks[a].cost < ranks[b].cost
			}
			return ranks[a].node < ranks[b].node
		})
		for k := 0; k < quota[ti]; k++ {
			out[ti] = append(out[ti], ranks[k].node)
			free[ranks[k].node] = false
		}
	}
	return out
}

// score evaluates one partition. Each tenant's per-MC demand is
// spread uniformly over its cores; the load flows along the X-Y
// routes (both directions, matching the request and reply legs) and
// lands on the MC itself.
func (sc *scorer) score(parts [][]topology.NodeID) Score {
	var s Score
	for ti := range sc.demands {
		ll, ml := sc.linkLoad[ti], sc.mcLoad[ti]
		for i := range ll {
			ll[i] = 0
		}
		for i := range ml {
			ml[i] = 0
		}
		cores := parts[ti]
		if len(cores) == 0 {
			continue
		}
		inv := 1 / float64(len(cores))
		for mc, w := range sc.demands[ti].perMC {
			if w == 0 {
				continue
			}
			perCore := w * inv
			ml[mc] += w
			dst := sc.mcNodes[mc]
			for _, c := range cores {
				s.Locality += perCore * float64(sc.mesh.Distance(c, dst))
				for _, l := range sc.rt.Route(c, dst) {
					ll[l] += perCore
				}
				for _, l := range sc.rt.Route(dst, c) {
					ll[l] += perCore
				}
			}
		}
	}
	// Pairwise cross-tenant overlap on every shared resource:
	// Σ_r [(Σ_t L)² − Σ_t L²] / 2.
	for l := 0; l < sc.mesh.NumLinks(); l++ {
		var sum, sq float64
		for ti := range sc.demands {
			v := sc.linkLoad[ti][l]
			sum += v
			sq += v * v
		}
		s.Interference += (sum*sum - sq) / 2
	}
	for mc := range sc.mcNodes {
		var sum, sq float64
		for ti := range sc.demands {
			v := sc.mcLoad[ti][mc]
			sum += v
			sq += v * v
		}
		s.Interference += (sum*sum - sq) / 2
	}
	s.Cost = s.Locality + sc.lambda*s.Interference
	return s
}

// ScorePartition evaluates an explicit partition (e.g. the strided
// baseline) under the same objective CoPlace anneals — tests and the
// bench-smoke never-worse guard compare placements through it.
func ScorePartition(cfg CoPlaceConfig, tenants []Tenant, parts [][]topology.NodeID) (Score, error) {
	if cfg.Mesh == nil {
		return Score{}, fmt.Errorf("tenancy: CoPlaceConfig.Mesh is nil")
	}
	if len(parts) != len(tenants) {
		return Score{}, fmt.Errorf("tenancy: %d partitions for %d tenants", len(parts), len(tenants))
	}
	return newScorer(cfg.Mesh, tenants, cfg.Lambda).score(parts), nil
}

// ClampToCores projects a full-mesh assignment onto a tenant's core
// partition: each set moves to the free partition core nearest its
// originally assigned core, with per-core load capped for balance.
// It is the multiprog study's clamp, shared here so the served
// scenario and the experiment cannot drift.
func ClampToCores(mesh *topology.Mesh, a *core.Assignment, cores []topology.NodeID) *core.Assignment {
	n := len(a.Core)
	capPer := (n + len(cores) - 1) / len(cores)
	load := make(map[topology.NodeID]int, len(cores))
	out := &core.Assignment{
		Region: make([]topology.RegionID, n),
		Core:   make([]topology.NodeID, n),
		Moved:  a.Moved,
	}
	order := make([]topology.NodeID, len(cores))
	for k := 0; k < n; k++ {
		copy(order, cores)
		want := a.Core[k]
		sort.SliceStable(order, func(i, j int) bool {
			return mesh.Distance(order[i], want) < mesh.Distance(order[j], want)
		})
		placed := order[len(order)-1]
		for _, c := range order {
			if load[c] < capPer {
				placed = c
				break
			}
		}
		load[placed]++
		out.Core[k] = placed
		out.Region[k] = mesh.RegionOf(placed)
	}
	return out
}
