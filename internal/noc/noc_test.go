package noc

import (
	"testing"

	"locmap/internal/topology"
)

func net() *Network {
	return New(topology.Default6x6(), DefaultConfig())
}

func TestUncontendedLatencyIsHopsTimesPerHop(t *testing.T) {
	n := net()
	src := n.Mesh.NodeAt(topology.Coord{X: 0, Y: 0})
	dst := n.Mesh.NodeAt(topology.Coord{X: 3, Y: 2})
	arrive := n.Send(src, dst, 100, Request)
	wantHops := int64(5)
	perHop := DefaultConfig().RouterCycles + DefaultConfig().LinkCycles
	if arrive-100 != wantHops*perHop {
		t.Errorf("latency = %d, want %d", arrive-100, wantHops*perHop)
	}
}

func TestLocalDeliveryIsFree(t *testing.T) {
	n := net()
	if got := n.Send(5, 5, 42, Data); got != 42 {
		t.Errorf("local send took %d cycles", got-42)
	}
}

func TestIdealNetworkIsFree(t *testing.T) {
	n := New(topology.Default6x6(), Config{RouterCycles: 3, LinkCycles: 1, Ideal: true})
	if got := n.Send(0, 35, 7, Data); got != 7 {
		t.Errorf("ideal network latency = %d, want 0", got-7)
	}
	if s := n.Stats(); s.Packets != 0 {
		t.Errorf("ideal network should not count packets, got %d", s.Packets)
	}
}

func TestContentionDelaysSecondPacket(t *testing.T) {
	n := net()
	src := topology.NodeID(0)
	dst := topology.NodeID(5) // straight east, shared links
	a := n.Send(src, dst, 0, Data)
	b := n.Send(src, dst, 0, Data)
	if b <= a {
		t.Errorf("second packet on same route should be delayed: %d then %d", a, b)
	}
	if s := n.Stats(); s.QueuedCycles == 0 {
		t.Error("expected queueing cycles to be recorded")
	}
}

func TestDisjointRoutesDoNotInterfere(t *testing.T) {
	n := net()
	m := n.Mesh
	a := n.Send(m.NodeAt(topology.Coord{X: 0, Y: 0}), m.NodeAt(topology.Coord{X: 2, Y: 0}), 0, Data)
	b := n.Send(m.NodeAt(topology.Coord{X: 0, Y: 5}), m.NodeAt(topology.Coord{X: 2, Y: 5}), 0, Data)
	if a != b {
		t.Errorf("disjoint routes should have equal latency: %d vs %d", a, b)
	}
}

func TestRoundTripAddsExtraAtDestination(t *testing.T) {
	n := net()
	src, dst := topology.NodeID(0), topology.NodeID(1)
	perHop := DefaultConfig().RouterCycles + DefaultConfig().LinkCycles
	got := n.RoundTrip(src, dst, 0, 10)
	if got != 2*perHop+10 {
		t.Errorf("round trip = %d, want %d", got, 2*perHop+10)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := net()
	n.Send(0, 1, 0, Request)
	n.Send(0, 2, 0, Request)
	s := n.Stats()
	if s.Packets != 2 {
		t.Errorf("Packets = %d, want 2", s.Packets)
	}
	if s.TotalHops != 3 {
		t.Errorf("TotalHops = %d, want 3", s.TotalHops)
	}
	if s.AvgHops != 1.5 {
		t.Errorf("AvgHops = %g, want 1.5", s.AvgHops)
	}
}

func TestNearbyTrafficBeatsFarTraffic(t *testing.T) {
	// The core premise of the paper: localized traffic finishes faster
	// than cross-chip traffic under identical load.
	mesh := topology.Default6x6()
	nearN := New(mesh, DefaultConfig())
	farN := New(mesh, DefaultConfig())
	var near, far int64
	for i := 0; i < 100; i++ {
		near = nearN.Send(mesh.NodeAt(topology.Coord{X: 0, Y: 0}), mesh.NodeAt(topology.Coord{X: 1, Y: 0}), near, Data)
		far = farN.Send(mesh.NodeAt(topology.Coord{X: 0, Y: 0}), mesh.NodeAt(topology.Coord{X: 5, Y: 5}), far, Data)
	}
	if near >= far {
		t.Errorf("near traffic (%d) should finish before far traffic (%d)", near, far)
	}
	if nearN.Stats().TotalLatency >= farN.Stats().TotalLatency {
		t.Error("near traffic should accumulate less network latency")
	}
}

func TestResetClears(t *testing.T) {
	n := net()
	n.Send(0, 35, 0, Data)
	n.Reset()
	if s := n.Stats(); s.Packets != 0 || s.TotalLatency != 0 || s.MaxLinkLoad != 0 {
		t.Errorf("Reset should clear stats: %+v", s)
	}
}

func TestLinkLoadsExposed(t *testing.T) {
	n := net()
	n.Send(0, 5, 0, Data)
	loads := n.LinkLoads()
	if len(loads) != n.Mesh.NumLinks() {
		t.Fatalf("loads = %d, want %d", len(loads), n.Mesh.NumLinks())
	}
	var total uint64
	for _, l := range loads {
		total += l
	}
	if total != 5 {
		t.Errorf("total link traversals = %d, want 5 (5 hops)", total)
	}
	// The copy must not alias internal state.
	loads[0] = 999
	if n.LinkLoads()[0] == 999 {
		t.Error("LinkLoads must return a copy")
	}
}
