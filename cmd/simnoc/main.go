// Command simnoc runs one of the 21 paper benchmarks on the manycore
// simulator under a chosen mapping and prints the headline metrics.
//
// Usage:
//
//	simnoc -app moldyn -llc shared
//	simnoc -app swim -mapping oracle -scale 2
//	simnoc -list
//
// Flags:
//
//	-app NAME        benchmark name (see -list)
//	-llc private|shared
//	-mapping la|oracle   mapping to compare against the default
//	-scale N         input-size scale (1, 2, 4)
//	-ideal           also measure the zero-latency-network bound
//	-list            print available benchmarks and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"locmap/internal/cache"
	"locmap/internal/core"
	"locmap/internal/experiments"
	"locmap/internal/inspector"
	"locmap/internal/sim"
	"locmap/internal/stats"
	"locmap/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simnoc:", err)
		os.Exit(1)
	}
}

func run() error {
	app := flag.String("app", "moldyn", "benchmark name")
	llc := flag.String("llc", "private", "LLC organization: private or shared")
	mapping := flag.String("mapping", "la", "mapping: la (CME/inspector) or oracle")
	scale := flag.Int("scale", 1, "input-size scale")
	ideal := flag.Bool("ideal", false, "also measure the ideal-network bound")
	heatmap := flag.Bool("heatmap", false, "print per-node NoC traffic heatmaps (default vs locmap)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			spec, _ := workloads.Lookup(name)
			class := "irregular"
			if spec.Regular {
				class = "regular  "
			}
			fmt.Printf("%-10s %s  %3d nests  %2d arrays\n", name, class, spec.Meta.LoopNests, spec.Meta.Arrays)
		}
		return nil
	}

	org := cache.Private
	switch *llc {
	case "private":
	case "shared":
		org = cache.SharedSNUCA
	default:
		return fmt.Errorf("unknown -llc %q", *llc)
	}
	if _, ok := workloads.Lookup(*app); !ok {
		return fmt.Errorf("unknown benchmark %q (try -list)", *app)
	}

	v := experiments.DefaultVariant(org)
	v.WithIdeal = *ideal
	switch *mapping {
	case "la":
	case "oracle":
		v.Oracle = true
	default:
		return fmt.Errorf("unknown -mapping %q", *mapping)
	}

	// One-job invocation of the same runner layer paperbench uses; a
	// single-slot pool, since there is nothing to overlap.
	m := experiments.NewRunner(1).RunJob(experiments.Job{
		Kind: experiments.KindApp, App: *app, Scale: *scale, Variant: v,
	})
	fmt.Printf("benchmark        %s (%s, scale %d, %s LLC, %s mapping)\n",
		m.Name, class(m.Regular), *scale, *llc, *mapping)
	fmt.Printf("default exec     %d cycles\n", m.DefCycles)
	fmt.Printf("locmap exec      %d cycles   (%.1f%% faster)\n", m.LACycles, m.ExecRed())
	fmt.Printf("net latency      %d -> %d cycles   (%.1f%% lower)\n", m.DefNet, m.LANet, m.NetRed())
	fmt.Printf("LLC miss rate    %.1f%%\n", 100*m.LLCMissRate)
	fmt.Printf("MAI error        %.3f\n", m.MAIErr)
	if org == cache.SharedSNUCA {
		fmt.Printf("CAI error        %.3f\n", m.CAIErr)
	}
	if m.OverheadFrac > 0 {
		fmt.Printf("inspector cost   %.1f%% of execution\n", 100*m.OverheadFrac)
	}
	fmt.Printf("sets rebalanced  %.1f%%\n", 100*m.FracMoved)
	if *ideal {
		fmt.Printf("ideal-NoC bound  %.1f%% (Figure 2 potential)\n", m.IdealRed())
	}
	if *heatmap {
		printHeatmaps(*app, *scale, v)
	}
	return nil
}

// printHeatmaps renders per-node NoC traffic for the default and the
// location-aware runs side by side.
func printHeatmaps(app string, scale int, v experiments.Variant) {
	p := workloads.MustNew(app, scale)
	mesh := v.Cfg.Mesh

	sysD := sim.New(v.Cfg)
	inspector.RunBaseline(sysD, p)
	fmt.Println()
	fmt.Print(stats.Heatmap("default mapping: per-node NoC traffic", sysD.NodeTraffic(), mesh.Width, mesh.Height))

	sysL := sim.New(v.Cfg)
	mapper := core.NewMapper(core.Config{Mesh: mesh})
	inspector.Run(sysL, p, mapper, inspector.DefaultOverhead())
	fmt.Println()
	fmt.Print(stats.Heatmap("location-aware mapping: per-node NoC traffic", sysL.NodeTraffic(), mesh.Width, mesh.Height))
}

func class(regular bool) string {
	if regular {
		return "regular"
	}
	return "irregular"
}
