package topology

import (
	"testing"
	"testing/quick"
)

func TestDefault6x6Shape(t *testing.T) {
	m := Default6x6()
	if m.NumNodes() != 36 {
		t.Fatalf("NumNodes = %d, want 36", m.NumNodes())
	}
	if m.NumRegions() != 9 {
		t.Fatalf("NumRegions = %d, want 9", m.NumRegions())
	}
	if m.NumMCs() != 4 {
		t.Fatalf("NumMCs = %d, want 4", m.NumMCs())
	}
}

func TestNodeCoordRoundTrip(t *testing.T) {
	m := Default6x6()
	for n := NodeID(0); n < NodeID(m.NumNodes()); n++ {
		if got := m.NodeAt(m.CoordOf(n)); got != n {
			t.Errorf("NodeAt(CoordOf(%d)) = %d", n, got)
		}
	}
}

func TestRegionOfPaperLayout(t *testing.T) {
	// On the 6x6 mesh with 2x2 regions, node (0,0) is in R1 (index 0),
	// node (5,0) in R3 (index 2), node (2,3) in R5 (index 4), node (5,5)
	// in R9 (index 8) — matching Figure 6a's R1..R9 layout.
	m := Default6x6()
	cases := []struct {
		c Coord
		r RegionID
	}{
		{Coord{0, 0}, 0},
		{Coord{1, 1}, 0},
		{Coord{2, 0}, 1},
		{Coord{5, 0}, 2},
		{Coord{0, 2}, 3},
		{Coord{2, 3}, 4},
		{Coord{5, 2}, 5},
		{Coord{0, 5}, 6},
		{Coord{3, 5}, 7},
		{Coord{5, 5}, 8},
	}
	for _, c := range cases {
		if got := m.RegionOf(m.NodeAt(c.c)); got != c.r {
			t.Errorf("RegionOf(%v) = %d, want %d", c.c, got, c.r)
		}
	}
}

func TestRegionNodesPartition(t *testing.T) {
	m := Default6x6()
	seen := make(map[NodeID]RegionID)
	for r := RegionID(0); r < RegionID(m.NumRegions()); r++ {
		nodes := m.RegionNodes(r)
		if len(nodes) != 4 {
			t.Fatalf("region %d has %d nodes, want 4", r, len(nodes))
		}
		for _, n := range nodes {
			if prev, dup := seen[n]; dup {
				t.Fatalf("node %d in both region %d and %d", n, prev, r)
			}
			seen[n] = r
			if m.RegionOf(n) != r {
				t.Errorf("RegionOf(%d) = %d, want %d", n, m.RegionOf(n), r)
			}
		}
	}
	if len(seen) != m.NumNodes() {
		t.Fatalf("regions cover %d nodes, want %d", len(seen), m.NumNodes())
	}
}

func TestMCPlacementCorners(t *testing.T) {
	m := Default6x6()
	want := []Coord{{0, 0}, {5, 0}, {5, 5}, {0, 5}}
	for i, w := range want {
		if got := m.MCCoord(MCID(i)); got != w {
			t.Errorf("MC%d at %v, want %v", i, got, w)
		}
	}
}

func TestMCPlacementEdgeMiddles(t *testing.T) {
	m := MustNew(6, 6, 3, 3, MCEdgeMiddles)
	want := []Coord{{3, 0}, {5, 3}, {3, 5}, {0, 3}}
	for i, w := range want {
		if got := m.MCCoord(MCID(i)); got != w {
			t.Errorf("MC%d at %v, want %v", i, got, w)
		}
	}
}

func TestRegionNeighbors(t *testing.T) {
	m := Default6x6()
	// Region indices: 0 1 2 / 3 4 5 / 6 7 8.
	cases := map[RegionID][]RegionID{
		0: {3, 1},
		1: {4, 0, 2},
		4: {1, 7, 3, 5},
		8: {5, 7},
	}
	for r, want := range cases {
		got := m.RegionNeighbors(r)
		if len(got) != len(want) {
			t.Fatalf("RegionNeighbors(%d) = %v, want %v", r, got, want)
		}
		set := map[RegionID]bool{}
		for _, g := range got {
			set[g] = true
		}
		for _, w := range want {
			if !set[w] {
				t.Errorf("RegionNeighbors(%d) = %v, missing %d", r, got, w)
			}
		}
	}
}

func TestRouteLengthEqualsManhattan(t *testing.T) {
	m := Default6x6()
	var buf []LinkID
	for a := NodeID(0); a < 36; a++ {
		for b := NodeID(0); b < 36; b++ {
			buf = m.Route(buf[:0], a, b)
			if len(buf) != m.Distance(a, b) {
				t.Fatalf("route %d->%d has %d links, distance %d",
					a, b, len(buf), m.Distance(a, b))
			}
		}
	}
}

func TestRouteIsXThenY(t *testing.T) {
	m := Default6x6()
	// From (0,0) to (2,1): expect east, east, south.
	r := m.Route(nil, m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{2, 1}))
	want := []LinkID{
		m.link(Coord{0, 0}, dirEast),
		m.link(Coord{1, 0}, dirEast),
		m.link(Coord{2, 0}, dirSouth),
	}
	if len(r) != len(want) {
		t.Fatalf("route = %v, want %v", r, want)
	}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("route[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestRouteLinksDistinct(t *testing.T) {
	// X-Y routing never revisits a link.
	m := MustNew(8, 8, 4, 4, MCCorners)
	var buf []LinkID
	for a := NodeID(0); a < 64; a += 7 {
		for b := NodeID(0); b < 64; b += 5 {
			buf = m.Route(buf[:0], a, b)
			seen := map[LinkID]bool{}
			for _, l := range buf {
				if seen[l] {
					t.Fatalf("route %d->%d repeats link %d", a, b, l)
				}
				seen[l] = true
			}
		}
	}
}

func TestManhattanSymmetricProperty(t *testing.T) {
	m := Default6x6()
	f := func(a, b uint8) bool {
		na := NodeID(int(a) % m.NumNodes())
		nb := NodeID(int(b) % m.NumNodes())
		return m.Distance(na, nb) == m.Distance(nb, na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	m := Default6x6()
	f := func(a, b, c uint8) bool {
		na := NodeID(int(a) % m.NumNodes())
		nb := NodeID(int(b) % m.NumNodes())
		nc := NodeID(int(c) % m.NumNodes())
		return m.Distance(na, nc) <= m.Distance(na, nb)+m.Distance(nb, nc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionMCDistanceMatchesPaperTies(t *testing.T) {
	// The paper's MAC vectors (Figure 6a) follow from which MCs are
	// nearest to each region center. Check the underlying distances:
	// R1 (top-left) is strictly closest to MC0; R2 (top-middle) ties
	// MC0/MC1; R5 (center) ties all four.
	m := Default6x6()
	d := func(r RegionID, mc MCID) int { return m.RegionMCDistance(r, mc) }
	if !(d(0, 0) < d(0, 1) && d(0, 0) < d(0, 2) && d(0, 0) < d(0, 3)) {
		t.Errorf("R1 should be strictly closest to MC0: %d %d %d %d",
			d(0, 0), d(0, 1), d(0, 2), d(0, 3))
	}
	if d(1, 0) != d(1, 1) || d(1, 0) >= d(1, 2) {
		t.Errorf("R2 should tie MC0/MC1: %d %d %d %d",
			d(1, 0), d(1, 1), d(1, 2), d(1, 3))
	}
	for mc := MCID(1); mc < 4; mc++ {
		if d(4, 0) != d(4, mc) {
			t.Errorf("R5 should be equidistant from all MCs: %d vs %d",
				d(4, 0), d(4, mc))
		}
	}
}

func TestNearestMC(t *testing.T) {
	m := Default6x6()
	cases := []struct {
		c  Coord
		mc MCID
	}{
		{Coord{0, 0}, 0},
		{Coord{5, 0}, 1},
		{Coord{5, 5}, 2},
		{Coord{0, 5}, 3},
		{Coord{1, 1}, 0},
		{Coord{4, 4}, 2},
	}
	for _, c := range cases {
		if got := m.NearestMC(m.NodeAt(c.c)); got != c.mc {
			t.Errorf("NearestMC(%v) = %d, want %d", c.c, got, c.mc)
		}
	}
}

func TestNewRejectsBadRegionGrid(t *testing.T) {
	if _, err := New(6, 6, 4, 3, MCCorners); err == nil {
		t.Error("expected error for 4x3 regions on 6x6 mesh")
	}
	if _, err := New(0, 6, 1, 1, MCCorners); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestRegionGridVariants(t *testing.T) {
	// The region-count sweep of Figure 10 uses 4(3x3), 6(2x3), 9(2x2),
	// 18(2x1) and 36(1x1) region grids on the 6x6 mesh.
	for _, g := range []struct{ rx, ry, n int }{
		{2, 2, 4}, {2, 3, 6}, {3, 3, 9}, {3, 6, 18}, {6, 6, 36},
	} {
		m := MustNew(6, 6, g.rx, g.ry, MCCorners)
		if m.NumRegions() != g.n {
			t.Errorf("grid %dx%d: NumRegions = %d, want %d", g.rx, g.ry, m.NumRegions(), g.n)
		}
	}
}

func TestValidateMCs(t *testing.T) {
	cases := []struct {
		name string
		mcs  []Coord
		ok   bool
	}{
		{"corners", []Coord{{0, 0}, {5, 0}, {5, 5}, {0, 5}}, true},
		{"single", []Coord{{2, 3}}, true},
		{"empty", nil, false},
		{"out of mesh x", []Coord{{6, 0}}, false},
		{"negative y", []Coord{{0, -1}}, false},
		{"overlap", []Coord{{1, 1}, {1, 1}}, false},
	}
	for _, tc := range cases {
		err := ValidateMCs(6, 6, tc.mcs)
		if (err == nil) != tc.ok {
			t.Errorf("%s: ValidateMCs = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewWithMCs(t *testing.T) {
	mcs := []Coord{{0, 0}, {3, 0}, {5, 2}, {0, 4}}
	m, err := NewWithMCs(6, 6, 3, 3, mcs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Placement != MCCustom {
		t.Fatalf("Placement = %v, want custom", m.Placement)
	}
	if m.NumMCs() != 4 {
		t.Fatalf("NumMCs = %d, want 4", m.NumMCs())
	}
	for i, want := range mcs {
		if got := m.MCCoord(MCID(i)); got != want {
			t.Errorf("MCCoord(%d) = %v, want %v", i, got, want)
		}
	}
	// The MC list is copied: mutating the input must not affect the mesh.
	mcs[0] = Coord{9, 9}
	if got := m.MCCoord(0); got != (Coord{0, 0}) {
		t.Errorf("MCCoord(0) aliases caller slice: %v", got)
	}
	if _, err := NewWithMCs(6, 6, 3, 3, []Coord{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("NewWithMCs accepted overlapping MCs")
	}
	if _, err := NewWithMCs(6, 6, 4, 3, mcs); err == nil {
		t.Fatal("NewWithMCs accepted non-tiling region grid")
	}
}

func TestWithMCs(t *testing.T) {
	base := Default6x6()
	moved, err := base.WithMCs([]Coord{{2, 0}, {5, 2}, {3, 5}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// The base mesh is untouched.
	if got := base.MCCoord(0); got != (Coord{0, 0}) {
		t.Fatalf("base mesh mutated: MC0 = %v", got)
	}
	if got := moved.MCCoord(0); got != (Coord{2, 0}) {
		t.Fatalf("moved MC0 = %v, want (2,0)", got)
	}
	if moved.Width != base.Width || moved.NumRegions() != base.NumRegions() {
		t.Fatal("WithMCs changed mesh geometry")
	}
	if _, err := base.WithMCs([]Coord{{0, 0}, {7, 7}}); err == nil {
		t.Fatal("WithMCs accepted out-of-mesh coordinate")
	}
}

func TestAMDCenterLowerThanCorner(t *testing.T) {
	m := Default6x6()
	center := m.AMD(Coord{2, 2})
	corner := m.AMD(Coord{0, 0})
	if center >= corner {
		t.Fatalf("AMD(center)=%v >= AMD(corner)=%v", center, corner)
	}
	// On the 6x6 mesh the corner AMD is the mean of all Manhattan
	// distances from (0,0): sum_{x,y} x+y = 2*36*2.5 = 180, /36 = 5.
	if corner != 5 {
		t.Fatalf("AMD(corner) = %v, want 5", corner)
	}
}

func TestEdgeCoords(t *testing.T) {
	m := Default6x6()
	edges := m.EdgeCoords()
	if len(edges) != 20 {
		t.Fatalf("len(EdgeCoords) = %d, want 20", len(edges))
	}
	for _, c := range edges {
		if c.X != 0 && c.X != 5 && c.Y != 0 && c.Y != 5 {
			t.Errorf("interior coordinate %v in EdgeCoords", c)
		}
	}
}
