package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"locmap/internal/metrics"
)

// ctxKey keys the per-request values carried through context —
// including into worker goroutines, so job-side logs and the final
// access line share one request id.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyInfo
)

// reqInfo is the mutable per-request record the handlers annotate and
// the middleware logs.
type reqInfo struct {
	cached      bool
	fingerprint string
	errCode     ErrorCode
}

// RequestIDFromContext returns the request's correlation id ("" if
// the context does not belong to an instrumented request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

func infoFromContext(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(ctxKeyInfo).(*reqInfo)
	return info
}

// newRequestID returns a 16-hex-char random correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed id rather than crash the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID echoes a well-formed client-supplied X-Request-Id and
// generates one otherwise. Client ids are capped and restricted to
// printable ASCII so they are safe to reflect into headers and logs.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		return newRequestID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return newRequestID()
		}
	}
	return id
}

// statusWriter records the response status for the access log and the
// per-endpoint counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// latencyBuckets spans 1ms..~32s, wide enough for both cache hits and
// full simulations.
var latencyBuckets = metrics.ExpBuckets(0.001, 2, 16)

// instrument wraps one endpoint's handler with the whole
// observability layer: request-id assignment, the in-flight gauge,
// per-endpoint request counters and latency histograms, the shared
// latency recorder behind /v1/stats, and one structured access-log
// line per request. Every response — success, 4xx, 5xx, enveloped
// 404/405 — flows through here, so /v1/stats and /metrics always
// agree.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram("locmapd_request_seconds",
		"Request latency by endpoint, cache hits and misses alike.",
		latencyBuckets, metrics.Labels{"endpoint": endpoint})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		info := &reqInfo{}
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		ctx = context.WithValue(ctx, ctxKeyInfo, info)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}

		s.httpInflight.Inc()
		started := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(started)
		s.httpInflight.Dec()

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.requests.Add(1)
		if sw.status >= 400 {
			s.errors.Add(1)
		}
		s.lat.Observe(elapsed.Seconds())
		hist.Observe(elapsed.Seconds())
		s.reg.Counter("locmapd_requests_total",
			"Requests by endpoint and response status.",
			metrics.Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.status)}).Inc()

		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("endpoint", endpoint),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("elapsed", elapsed),
		}
		if info.fingerprint != "" {
			attrs = append(attrs,
				slog.Bool("cached", info.cached),
				slog.String("fingerprint", info.fingerprint))
		}
		if info.errCode != "" {
			attrs = append(attrs, slog.String("error_code", string(info.errCode)))
		}
		level := slog.LevelInfo
		switch {
		case sw.status >= 500:
			level = slog.LevelError
		case sw.status >= 400:
			level = slog.LevelWarn
		}
		s.log.LogAttrs(ctx, level, "request", attrs...)
	})
}

// registerCollectors exports the components that keep their own
// counters — the plan cache (per shard) and the worker pool — as
// scrape-time callbacks, so /metrics never double-counts what
// /v1/stats already tracks.
func (s *Server) registerCollectors() {
	for i := 0; i < s.cache.NumShards(); i++ {
		i := i
		shard := metrics.Labels{"shard": strconv.Itoa(i)}
		s.reg.CounterFunc("locmapd_plancache_hits_total",
			"Plan-cache hits by shard.", shard,
			func() float64 { return float64(s.cache.ShardStat(i).Hits) })
		s.reg.CounterFunc("locmapd_plancache_misses_total",
			"Plan-cache misses by shard.", shard,
			func() float64 { return float64(s.cache.ShardStat(i).Misses) })
		s.reg.CounterFunc("locmapd_plancache_evictions_total",
			"Plan-cache evictions by shard.", shard,
			func() float64 { return float64(s.cache.ShardStat(i).Evictions) })
		s.reg.CounterFunc("locmapd_plancache_tier_upgrades_total",
			"Plan-cache entries upgraded in place to a higher confidence tier, by shard.", shard,
			func() float64 { return float64(s.cache.ShardStat(i).TierUpgrades) })
		s.reg.GaugeFunc("locmapd_plancache_entries",
			"Plan-cache resident entries by shard.", shard,
			func() float64 { return float64(s.cache.ShardStat(i).Entries) })
	}
	s.reg.GaugeFunc("locmapd_worker_inflight_jobs",
		"Jobs currently holding a worker slot.", nil,
		func() float64 { return float64(s.inflight.Load()) })
	s.reg.GaugeFunc("locmapd_uptime_seconds",
		"Seconds since the server was created.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
}
