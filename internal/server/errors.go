package server

import "fmt"

// ErrorCode is a stable, machine-readable identifier for one failure
// class. Codes are part of the v1 API contract (see API.md): clients
// may switch on them, so existing codes never change meaning and new
// failure classes get new codes.
type ErrorCode string

const (
	// ErrInvalidBody: the request body is not valid JSON for the
	// endpoint's schema (syntax error, wrong type, unknown field).
	ErrInvalidBody ErrorCode = "invalid_body"

	// ErrBodyTooLarge: the request body exceeds the configured limit.
	ErrBodyTooLarge ErrorCode = "body_too_large"

	// ErrInvalidRequest: the body decoded but a field failed
	// validation (empty source, bad mesh/llc/intra, out-of-range α).
	ErrInvalidRequest ErrorCode = "invalid_request"

	// ErrInvalidSource: the program source cannot be tokenized, so no
	// plan fingerprint exists for it.
	ErrInvalidSource ErrorCode = "invalid_source"

	// ErrCompileFailed: the mapping or simulation pipeline rejected
	// the program (parse/semantic errors, simulation failures).
	ErrCompileFailed ErrorCode = "compile_failed"

	// ErrMethodNotAllowed: the path exists but not for this method;
	// the Allow response header lists the supported methods.
	ErrMethodNotAllowed ErrorCode = "method_not_allowed"

	// ErrNotFound: no such endpoint.
	ErrNotFound ErrorCode = "not_found"

	// ErrOverloaded: the request timed out waiting for a worker slot
	// before its job ever started.
	ErrOverloaded ErrorCode = "overloaded"

	// ErrTimeout: the job started but exceeded the request timeout.
	// The job keeps running and caches its result, so an identical
	// retry is typically a cache hit.
	ErrTimeout ErrorCode = "timeout"

	// ErrBatchTooLarge: a batch submission carries more jobs than the
	// configured per-batch maximum.
	ErrBatchTooLarge ErrorCode = "batch_too_large"

	// ErrBatchNotFound: no batch with that id (never submitted, or
	// every member expired out of result retention).
	ErrBatchNotFound ErrorCode = "batch_not_found"

	// ErrJobNotFound: no job with that id (never submitted, or
	// expired out of result retention).
	ErrJobNotFound ErrorCode = "job_not_found"

	// ErrJobNotCancellable: the job is already running or finished;
	// only queued jobs can be cancelled.
	ErrJobNotCancellable ErrorCode = "job_not_cancellable"

	// ErrQueueFull: accepting the batch would push the job queue past
	// its configured bound; resubmit later.
	ErrQueueFull ErrorCode = "queue_full"

	// ErrNotReady: the /readyz probe found the sync worker pool or
	// the batch queue saturated past the readiness watermark.
	ErrNotReady ErrorCode = "not_ready"

	// ErrPlanNotFound: the peer plan API has no cached plan under the
	// requested fingerprint (GET /v1/cluster/plan/{fingerprint}).
	ErrPlanNotFound ErrorCode = "plan_not_found"

	// ErrSessionNotFound: no session with that id (never registered,
	// or deleted).
	ErrSessionNotFound ErrorCode = "session_not_found"

	// ErrTooManySessions: registering would exceed the configured
	// session cap; delete a session or raise -max-tenants.
	ErrTooManySessions ErrorCode = "too_many_sessions"

	// ErrInternal: an unexpected internal failure (e.g. batch journal
	// I/O). Defensive: no handler produces it in normal operation.
	ErrInternal ErrorCode = "internal"
)

// apiError pairs an HTTP status with a stable code and message; every
// non-2xx path produces exactly one.
type apiError struct {
	status int
	code   ErrorCode
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, code ErrorCode, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// ErrorBody is the inner object of the v1 error envelope.
type ErrorBody struct {
	// Code is the stable machine-readable failure class.
	Code ErrorCode `json:"code"`

	// Message is a human-readable description; its wording is not part
	// of the API contract.
	Message string `json:"message"`

	// RequestID is the request correlation id (the X-Request-Id
	// response header); the same id appears in the server's log line
	// for the request.
	RequestID string `json:"request_id"`
}

// errorResponse is the JSON error envelope for every non-2xx
// response: {"error":{"code":...,"message":...,"request_id":...}}.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}
