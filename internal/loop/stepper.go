package loop

import (
	"locmap/internal/mem"
)

// StepPlan precomputes, for one nest, the per-reference subscript deltas
// of a single flat-iteration step. Walking a nest in flat order changes
// the iteration vector like an odometer: the innermost dimension
// increments, and on wrap the carry propagates outward. For an affine
// subscript the resulting value change depends only on the dimension the
// carry stops at:
//
//	delta(d) = C_d − Σ_{j>d} C_j·(B_j−1)
//
// (the stopping dimension gains one, every inner dimension falls from
// B_j−1 back to 0). Precomputing delta(d) per reference turns address
// generation for consecutive iterations into one add per reference —
// no Unflatten, no affine re-evaluation. Irregular (index-array)
// references keep their table lookup; their delta rows are zero.
//
// A plan is immutable and shared by all Steppers over the nest.
type StepPlan struct {
	nest   *Nest
	dims   int
	deltas []int64 // len(nest.Refs) × dims, row-major by reference
}

// NewStepPlan builds the step plan for the nest.
func (n *Nest) NewStepPlan() *StepPlan {
	dims := len(n.Bounds)
	p := &StepPlan{
		nest:   n,
		dims:   dims,
		deltas: make([]int64, len(n.Refs)*dims),
	}
	for ri := range n.Refs {
		r := &n.Refs[ri]
		if r.Irregular {
			continue
		}
		coeff := func(d int) int64 {
			if d < len(r.Index.Coeffs) {
				return r.Index.Coeffs[d]
			}
			return 0
		}
		for d := 0; d < dims; d++ {
			delta := coeff(d)
			for j := d + 1; j < dims; j++ {
				delta -= coeff(j) * (n.Bounds[j] - 1)
			}
			p.deltas[ri*dims+d] = delta
		}
	}
	return p
}

// Refs returns the number of references the plan's steppers serve.
func (p *StepPlan) Refs() int { return len(p.nest.Refs) }

// Dims returns the nest depth.
func (p *StepPlan) Dims() int { return p.dims }

// Stepper walks one nest position (a flat iteration id) and yields the
// address of each reference there. SeekTo performs the full iteration-
// vector and subscript evaluation; Step advances to the next flat id
// incrementally. Each concurrent walker (one per simulated core) owns a
// Stepper; all share the plan.
type Stepper struct {
	plan *StepPlan
	flat int64
	iv   []int64 // current iteration vector, len = plan.dims
	val  []int64 // current affine subscript values, len = len(nest.Refs)
}

// Stepper returns a stepper positioned at flat id 0, with freshly
// allocated buffers.
func (p *StepPlan) Stepper() *Stepper {
	st := &Stepper{}
	p.Bind(st, make([]int64, p.dims), make([]int64, len(p.nest.Refs)))
	return st
}

// Bind attaches a stepper to the plan using caller-provided buffers (iv
// needs p.Dims() elements, val needs p.Refs()), so many steppers can be
// carved from two backing arrays. The stepper is positioned at flat 0.
func (p *StepPlan) Bind(st *Stepper, iv, val []int64) {
	st.plan = p
	st.iv = iv[:p.dims]
	st.val = val[:len(p.nest.Refs)]
	st.SeekTo(0)
}

// Flat returns the stepper's current flat iteration id.
func (st *Stepper) Flat() int64 { return st.flat }

// IV returns the current iteration vector. The slice aliases stepper
// state and is only valid until the next SeekTo/Step.
func (st *Stepper) IV() []int64 { return st.iv }

// SeekTo positions the stepper at the given flat id, re-deriving the
// iteration vector and every affine subscript from scratch. Use it to
// jump between iteration sets; Step covers the consecutive case.
func (st *Stepper) SeekTo(flat int64) {
	st.flat = flat
	n := st.plan.nest
	f := flat
	for d := st.plan.dims - 1; d >= 0; d-- {
		st.iv[d] = f % n.Bounds[d]
		f /= n.Bounds[d]
	}
	for ri := range n.Refs {
		if !n.Refs[ri].Irregular {
			st.val[ri] = n.Refs[ri].Index.Eval(st.iv)
		}
	}
}

// Step advances to the next flat id: an odometer increment of the
// iteration vector plus one precomputed delta add per reference.
func (st *Stepper) Step() {
	st.flat++
	p := st.plan
	d := p.dims - 1
	for d >= 0 {
		st.iv[d]++
		if st.iv[d] < p.nest.Bounds[d] {
			break
		}
		st.iv[d] = 0
		d--
	}
	if d < 0 {
		// Wrapped past the last iteration; re-derive (callers only do
		// this transiently at a nest boundary).
		st.SeekTo(st.flat)
		return
	}
	for ri := range st.val {
		st.val[ri] += p.deltas[ri*p.dims+d]
	}
}

// Addr returns the byte address reference ri accesses at the current
// position. It is equivalent to nest.Refs[ri].Addr(st.IV(), st.Flat()).
func (st *Stepper) Addr(ri int) mem.Addr {
	r := &st.plan.nest.Refs[ri]
	if r.Irregular {
		if len(r.IndexArray) == 0 {
			return r.Array.AddrOf(0)
		}
		return r.Array.AddrOf(r.IndexArray[st.flat%int64(len(r.IndexArray))])
	}
	return r.Array.AddrOf(st.val[ri])
}
