package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedExec executes like countingExec, but jobs whose fingerprint
// starts with "block" park until gate is closed (or the run context is
// cancelled).
func gatedExec(execs *sync.Map, gate chan struct{}) func(ctx context.Context, j *Job) ([]byte, bool, error) {
	inner := countingExec(execs)
	return func(ctx context.Context, j *Job) ([]byte, bool, error) {
		if strings.HasPrefix(j.Fingerprint, "block") {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		return inner(ctx, j)
	}
}

func TestDetachedRunsWhilePoolIsSaturated(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, DetachedWorkers: 1, Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)

	// Saturate the single pool worker.
	if _, _, err := q.SubmitBatch("req", []Spec{{Kind: "map", Fingerprint: "block-pool"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pool job running", func() bool {
		jobs, _ := q.List(ListOptions{State: StateRunning, Limit: 10})
		return len(jobs) == 1
	})

	// A detached job must complete anyway: it has its own worker.
	dj, err := q.Submit("req", Spec{Kind: "optimize", Fingerprint: "opt-1", Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dj.Detached || dj.Priority != PriorityBatch || dj.BatchID == "" {
		t.Fatalf("detached job spec: %+v", dj)
	}
	waitFor(t, "detached completion", func() bool {
		j, ok := q.Job(dj.ID)
		return ok && j.State == StateDone
	})
	close(gate)
}

func TestDetachedOrchestratorFansOutChildren(t *testing.T) {
	// The deadlock scenario the detached class exists for: a Workers=1
	// pool, and an orchestrator job that submits children into that
	// pool and waits for them. On a pool worker this would deadlock.
	var execs sync.Map
	var qp atomic.Pointer[Queue]
	exec := func(ctx context.Context, j *Job) ([]byte, bool, error) {
		if j.Kind != "orchestrate" {
			return countingExec(&execs)(ctx, j)
		}
		q := qp.Load()
		_, children, err := q.SubmitBatch(j.SubmitRequestID, []Spec{specN(101), specN(102)})
		if err != nil {
			return nil, false, err
		}
		for _, c := range children {
			for {
				cj, ok := q.Job(c.ID)
				if !ok {
					return nil, false, errors.New("child vanished")
				}
				if cj.State.Terminal() {
					break
				}
				select {
				case <-ctx.Done():
					return nil, false, ctx.Err()
				case <-time.After(time.Millisecond):
				}
			}
		}
		return []byte(`{"children":2}`), false, nil
	}
	q := mustOpen(t, Config{Workers: 1, DetachedWorkers: 1, Exec: exec})
	qp.Store(q)
	defer closeQueue(t, q)

	j, err := q.Submit("req", Spec{Kind: "orchestrate", Fingerprint: "orch-1", Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "orchestrator completion", func() bool {
		got, ok := q.Job(j.ID)
		return ok && got.State == StateDone
	})
	got, _ := q.Job(j.ID)
	if string(got.Result) != `{"children":2}` {
		t.Fatalf("orchestrator result = %s", got.Result)
	}
	if execCount(&execs, "fp-101") != 1 || execCount(&execs, "fp-102") != 1 {
		t.Fatal("children did not execute on the pool")
	}
}

func TestSubmitCoalescesByFingerprint(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, DetachedWorkers: 1, Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)

	j1, err := q.Submit("r1", Spec{Kind: "optimize", Fingerprint: "block-opt", Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same fingerprint while queued/running: coalesced to the same job.
	j2, err := q.Submit("r2", Spec{Kind: "optimize", Fingerprint: "block-opt", Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != j2.ID {
		t.Fatalf("re-submission created a new job: %s vs %s", j1.ID, j2.ID)
	}
	close(gate)
	waitFor(t, "completion", func() bool {
		j, ok := q.Job(j1.ID)
		return ok && j.State == StateDone
	})
	// Same fingerprint once done: answered from the retained result.
	j3, err := q.Submit("r3", Spec{Kind: "optimize", Fingerprint: "block-opt", Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != j1.ID || j3.State != StateDone {
		t.Fatalf("post-completion re-submission: %+v", j3)
	}
	if n := execCount(&execs, "block-opt"); n != 1 {
		t.Fatalf("fingerprint executed %d times, want 1", n)
	}
}

func TestSubmitDetachedLimit(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, DetachedWorkers: 1, DetachedLimit: 1,
		Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)
	defer close(gate)

	// First job occupies the detached worker; second fills the queue;
	// third must bounce with ErrQueueFull.
	if _, err := q.Submit("r", Spec{Kind: "optimize", Fingerprint: "block-a", Detached: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first detached running", func() bool { return q.DetachedDepth() == 0 })
	if _, err := q.Submit("r", Spec{Kind: "optimize", Fingerprint: "block-b", Detached: true}); err != nil {
		t.Fatal(err)
	}
	_, err := q.Submit("r", Spec{Kind: "optimize", Fingerprint: "block-c", Detached: true})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third detached submit: %v, want ErrQueueFull", err)
	}
}

func TestDetachedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Dir: dir, Workers: 1, DetachedWorkers: 1,
		Exec: gatedExec(&execs, gate)})

	j, err := q.Submit("req", Spec{Kind: "optimize", Fingerprint: "block-opt", Detached: true,
		Request: json.RawMessage(`{"candidates":200}`)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "detached running", func() bool {
		got, ok := q.Job(j.ID)
		return ok && got.State == StateRunning
	})
	q.crash()

	// Replay must re-queue the interrupted job as detached work with
	// its request intact.
	q2 := mustOpen(t, Config{Dir: dir, Workers: 1, DetachedWorkers: 1,
		Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q2)
	close(gate)
	waitFor(t, "replayed completion", func() bool {
		got, ok := q2.Job(j.ID)
		return ok && got.State == StateDone
	})
	got, _ := q2.Job(j.ID)
	if !got.Detached || string(got.Request) != `{"candidates":200}` {
		t.Fatalf("replayed job lost its spec: %+v", got)
	}
}

func TestListPaginationAndStateFilter(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, DetachedWorkers: 1, Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)
	defer close(gate)

	// Three jobs that finish, one that blocks running.
	if _, _, err := q.SubmitBatch("r", []Spec{specN(1), specN(2), specN(3)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch drained", func() bool {
		done, _ := q.List(ListOptions{State: StateDone, Limit: 10})
		return len(done) == 3
	})
	if _, _, err := q.SubmitBatch("r", []Spec{{Kind: "map", Fingerprint: "block-x"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool {
		run, _ := q.List(ListOptions{State: StateRunning, Limit: 10})
		return len(run) == 1
	})

	// Full listing: newest first, seq strictly descending.
	all, next := q.List(ListOptions{Limit: 10})
	if len(all) != 4 || next != 0 {
		t.Fatalf("List all = %d jobs, next %d; want 4, 0", len(all), next)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq >= all[i-1].Seq {
			t.Fatalf("listing not newest-first at %d", i)
		}
	}
	if all[0].Fingerprint != "block-x" {
		t.Fatalf("newest job is %s, want block-x", all[0].Fingerprint)
	}

	// Cursor walk with page size 3: 3 + 1.
	page1, cur := q.List(ListOptions{Limit: 3})
	if len(page1) != 3 || cur == 0 {
		t.Fatalf("page1 = %d jobs, cursor %d", len(page1), cur)
	}
	page2, cur2 := q.List(ListOptions{Limit: 3, Before: cur})
	if len(page2) != 1 || cur2 != 0 {
		t.Fatalf("page2 = %d jobs, cursor %d; want 1, 0", len(page2), cur2)
	}
	if page2[0].ID == page1[2].ID {
		t.Fatal("cursor did not advance")
	}

	// State filter.
	running, _ := q.List(ListOptions{State: StateRunning, Limit: 10})
	if len(running) != 1 || running[0].Fingerprint != "block-x" {
		t.Fatalf("running filter = %+v", running)
	}
	queued, _ := q.List(ListOptions{State: StateQueued, Limit: 10})
	if len(queued) != 0 {
		t.Fatalf("queued filter = %d jobs, want 0", len(queued))
	}
}

func TestSetProgress(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)

	if err := q.SetProgress("nope", json.RawMessage(`{}`)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetProgress on unknown id: %v", err)
	}

	_, jobs, err := q.SubmitBatch("r", []Spec{{Kind: "map", Fingerprint: "block-p"}})
	if err != nil {
		t.Fatal(err)
	}
	id := jobs[0].ID
	waitFor(t, "running", func() bool {
		j, ok := q.Job(id)
		return ok && j.State == StateRunning
	})
	want := `{"phase":"search","evaluated":64}`
	if err := q.SetProgress(id, json.RawMessage(want)); err != nil {
		t.Fatal(err)
	}
	j, _ := q.Job(id)
	if string(j.Progress) != want {
		t.Fatalf("Progress = %s, want %s", j.Progress, want)
	}
	close(gate)
	waitFor(t, "done", func() bool {
		j, ok := q.Job(id)
		return ok && j.State == StateDone
	})
	j, _ = q.Job(id)
	if j.Progress != nil {
		t.Fatalf("terminal job kept progress: %s", j.Progress)
	}
	// Progress after completion is silently dropped.
	if err := q.SetProgress(id, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if j, _ := q.Job(id); j.Progress != nil {
		t.Fatal("progress re-attached to a done job")
	}
}

func TestSubmitPoolJobCountsAgainstQueueLimit(t *testing.T) {
	var execs sync.Map
	gate := make(chan struct{})
	q := mustOpen(t, Config{Workers: 1, QueueLimit: 1, Exec: gatedExec(&execs, gate)})
	defer closeQueue(t, q)
	defer close(gate)

	if _, err := q.Submit("r", Spec{Kind: "map", Fingerprint: "block-1"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "running", func() bool { return q.Depth() == 0 })
	if _, err := q.Submit("r", Spec{Kind: "map", Fingerprint: "block-2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("r", Spec{Kind: "map", Fingerprint: "block-3"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit pool Submit: %v, want ErrQueueFull", err)
	}
}

func TestSubmitClosedQueue(t *testing.T) {
	q := mustOpen(t, Config{Workers: 1, Exec: countingExec(new(sync.Map))})
	closeQueue(t, q)
	if _, err := q.Submit("r", Spec{Kind: "map", Fingerprint: fmt.Sprintf("fp-%d", 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on closed queue: %v, want ErrClosed", err)
	}
}
