#!/usr/bin/env bash
# Crash-recovery smoke test for locmapd's durable batch queue.
#
# Starts locmapd with a throwaway journal directory, submits a 3-job
# batch, kill -9s the process immediately (so jobs die queued or
# mid-run), restarts it over the same journal directory, and asserts
# the replayed queue completes every job with a retrievable result.
#
# Needs: go, curl, jq. Exit 0 = recovered, non-zero = lost work.
set -euo pipefail

ADDR="${LOCMAPD_ADDR:-127.0.0.1:18347}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
JDIR="$WORK/journal"
BIN="$WORK/locmapd"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "crash_smoke: $*"; }

start_server() {
    "$BIN" -addr "$ADDR" -journal-dir "$JDIR" -batch-workers 1 2>>"$WORK/server.log" &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    say "server did not come up; log:"
    cat "$WORK/server.log" >&2
    exit 1
}

say "building locmapd"
go build -o "$BIN" ./cmd/locmapd

say "starting locmapd (journal: $JDIR)"
start_server

say "checking readiness probe"
curl -fsS "$BASE/readyz" >/dev/null

say "submitting a 3-job batch"
SUBMIT="$(curl -fsS -X POST "$BASE/v1/batch" -H 'Content-Type: application/json' -d '{
  "jobs": [
    {"kind":"map","request":{"source":"param N = 4096\narray A[N]\narray B[N]\nparallel for i = 0..N work 16 { A[i] = B[i] }"}},
    {"kind":"map","request":{"source":"param N = 8192\narray A[N]\narray B[N]\nparallel for i = 0..N work 32 { A[i] = B[i] }"}},
    {"kind":"simulate","request":{"source":"param N = 4096\narray A[N]\narray B[N]\nparallel for i = 0..N work 16 { A[i] = B[i] }"}}
  ]
}')"
BATCH_ID="$(jq -re '.batch_id' <<<"$SUBMIT")"
say "batch $BATCH_ID accepted"

say "kill -9 before the queue drains"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

say "restarting over the same journal"
start_server

say "polling for recovery"
for i in $(seq 1 300); do
    STATUS="$(curl -fsS "$BASE/v1/batch/$BATCH_ID")"
    if [ "$(jq -r '.done' <<<"$STATUS")" = "true" ]; then
        DONE="$(jq -r '.counts.done' <<<"$STATUS")"
        if [ "$DONE" != "3" ]; then
            say "FAIL: batch finished with counts $(jq -c '.counts' <<<"$STATUS")"
            exit 1
        fi
        RESULTS="$(jq -r '[.jobs[] | select(.result != null)] | length' <<<"$STATUS")"
        if [ "$RESULTS" != "3" ]; then
            say "FAIL: only $RESULTS of 3 results retrievable"
            exit 1
        fi
        say "PASS: all 3 jobs replayed and completed with results"
        exit 0
    fi
    sleep 0.1
done

say "FAIL: batch never completed after restart: $(jq -c '.counts' <<<"$STATUS")"
exit 1
