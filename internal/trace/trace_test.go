package trace

import (
	"bytes"
	"strings"
	"testing"

	"locmap/internal/loop"
	"locmap/internal/mem"
)

func smallProgram() *loop.Program {
	a := &loop.Array{Name: "A", ElemSize: 8, Elems: 256}
	b := &loop.Array{Name: "B", ElemSize: 8, Elems: 256}
	n := &loop.Nest{
		Name:   "n",
		Bounds: []int64{128},
		Refs: []loop.Ref{
			{Array: a, Kind: loop.Write, Index: loop.Affine{Coeffs: []int64{1}}},
			{Array: b, Kind: loop.Read, Index: loop.Affine{Coeffs: []int64{2}}},
		},
	}
	p := &loop.Program{Name: "p", Arrays: []*loop.Array{a, b}, Nests: []*loop.Nest{n}}
	p.Layout(0, 2048)
	return p
}

func TestExtractOrderAndCount(t *testing.T) {
	p := smallProgram()
	var recs []Record
	Extract(p, func(r Record) { recs = append(recs, r) })
	if len(recs) != 256 {
		t.Fatalf("records = %d, want 256", len(recs))
	}
	if !recs[0].Write || recs[1].Write {
		t.Error("first ref is the write, second the read")
	}
	// Iteration 1's write goes to A[1].
	if recs[2].Addr != p.Arrays[0].AddrOf(1) {
		t.Errorf("record 2 addr = %d", recs[2].Addr)
	}
}

func TestRoundTrip(t *testing.T) {
	p := smallProgram()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var orig []Record
	Extract(p, func(r Record) {
		orig = append(orig, r)
		w.Add(r)
	})
	count, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if count != int64(len(orig)) {
		t.Fatalf("count = %d", count)
	}

	var got []Record
	if err := Read(&buf, func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("decoded %d of %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if err := Read(strings.NewReader("NOTATRACE"), func(Record) {}); err == nil {
		t.Error("bad magic should fail")
	}
	if err := Read(strings.NewReader(""), func(Record) {}); err == nil {
		t.Error("empty input should fail")
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// Sequential streams should cost only a few bytes per record.
	p := smallProgram()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n := int64(0)
	Extract(p, func(r Record) { w.Add(r); n++ })
	w.Close()
	perRec := float64(buf.Len()) / float64(n)
	if perRec > 8 {
		t.Errorf("encoding too fat: %.1f bytes/record", perRec)
	}
}

func TestSummarize(t *testing.T) {
	p := smallProgram()
	amap := mem.NewInterleaved(2048, 64, 4, 36)
	s := Summarize(p, amap)
	if s.Records != 256 || s.Writes != 128 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Pages == 0 || s.Lines == 0 {
		t.Error("page/line counts missing")
	}
	var mcTotal int64
	for _, c := range s.PerMC {
		mcTotal += c
	}
	if mcTotal != s.Records {
		t.Error("per-MC histogram should cover all records")
	}
	out := s.String()
	if !strings.Contains(out, "records 256") || !strings.Contains(out, "MC0=") {
		t.Errorf("summary string = %q", out)
	}
}
