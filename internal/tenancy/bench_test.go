package tenancy

import (
	"fmt"
	"testing"
	"time"

	"locmap/internal/topology"
)

// benchCoPlace measures the co-placement search: full CoPlace calls
// per second plus the candidate-evaluation rate (cand/s), which
// bounds how many tenants-joined/left events one group can absorb.
func benchCoPlace(b *testing.B, n int) {
	mesh := topology.Default6x6()
	var tenants []Tenant
	for i := 0; i < n; i++ {
		tenants = append(tenants, mcTenant(fmt.Sprint(i), mesh, i%mesh.NumMCs()))
	}
	cfg := CoPlaceConfig{Mesh: mesh, Seed: 1}
	evaluated := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := CoPlace(cfg, tenants)
		if err != nil {
			b.Fatal(err)
		}
		evaluated += pl.Evaluated
	}
	b.ReportMetric(float64(evaluated)/b.Elapsed().Seconds(), "cand/s")
}

func BenchmarkCoPlaceTwoTenants(b *testing.B)  { benchCoPlace(b, 2) }
func BenchmarkCoPlaceFourTenants(b *testing.B) { benchCoPlace(b, 4) }

// BenchmarkIngest measures the telemetry hot path: one drift-window
// update plus the trigger decision, the per-sample cost every live
// session charges the serving path.
func BenchmarkIngest(b *testing.B) {
	m := NewManager(Config{AlphaTol: 0.5, MinEpochGap: time.Hour})
	s, err := m.Register("bench", "g", nil, nil, Plan{Tier: "estimate", PredictedAlpha: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate around the prediction so the window churns without
		// ever crossing the (loose) tolerance.
		m.Ingest(s, Telemetry{Alpha: 0.4 + 0.2*float64(i%2)})
	}
}
