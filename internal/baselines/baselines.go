// Package baselines implements the comparison points of the paper's
// evaluation:
//
//   - the default round-robin computation mapping (§5, provided by
//     core.DefaultSchedule),
//   - the ideal zero-latency network (Figure 2, via noc.Config.Ideal),
//   - DO — the data-layout optimization of Ding et al. [22] (Figure 13),
//     which relocates array pages once per array for the whole program,
//   - the hardware/OS application-to-core placement of Das et al. [16]
//     (Figure 14), which moves memory-intensive threads toward MCs,
//   - the perfect-estimation oracle (Figure 15): affinities taken from
//     observed behaviour with no estimation error and no overhead.
package baselines

import (
	"sort"

	"locmap/internal/core"
	"locmap/internal/loop"
	"locmap/internal/mem"
	"locmap/internal/sim"
	"locmap/internal/topology"
)

// arrayRot is one array's chosen page rotation under DO.
type arrayRot struct {
	lo, hi mem.Addr // page range [lo, hi)
	rot    int
}

// DOMap wraps a base address map with the DO layout: each array's pages
// are rotated within the MC interleave by a per-array constant chosen to
// minimize the (profiled) distance between accessing cores and MCs. One
// rotation per array for the entire program — the scheme's inherent
// limitation the paper points out: different nests may want different
// layouts, but a single one must be chosen.
type DOMap struct {
	Base     mem.Map
	PageSize int
	rots     []arrayRot
}

// MC implements mem.Map.
func (m *DOMap) MC(addr mem.Addr) int {
	mc := m.Base.MC(addr)
	page := addr / mem.Addr(m.PageSize)
	for i := range m.rots {
		if page >= m.rots[i].lo && page < m.rots[i].hi {
			return (mc + m.rots[i].rot) % m.Base.NumMCs()
		}
	}
	return mc
}

// HomeBank implements mem.Map.
func (m *DOMap) HomeBank(addr mem.Addr) int { return m.Base.HomeBank(addr) }

// NumMCs implements mem.Map.
func (m *DOMap) NumMCs() int { return m.Base.NumMCs() }

// NumBanks implements mem.Map.
func (m *DOMap) NumBanks() int { return m.Base.NumBanks() }

// Rotations exposes the chosen per-array rotations (for reporting).
func (m *DOMap) Rotations() []int {
	out := make([]int, len(m.rots))
	for i := range m.rots {
		out[i] = m.rots[i].rot
	}
	return out
}

// BuildDO profiles program p under the default schedule geometry and
// chooses, per array, the page rotation that minimizes total
// core-to-MC Manhattan distance of its (line-granularity) accesses. The
// profile walks the reference streams directly — the compile-time
// analysis DO performs.
func BuildDO(p *loop.Program, mesh *topology.Mesh, base mem.Map, pageSize int, iterSetFrac float64) *DOMap {
	nmc := base.NumMCs()
	// counts[array][page%nmc][core] accumulated over all refs: a page
	// rotation only changes MC by (page+r)%nmc, so aggregating pages by
	// page%nmc loses nothing.
	counts := make(map[*loop.Array][][]float64, len(p.Arrays))
	for _, a := range p.Arrays {
		c := make([][]float64, nmc)
		for m := range c {
			c[m] = make([]float64, mesh.NumNodes())
		}
		counts[a] = c
	}
	var iv []int64
	for _, n := range p.Nests {
		sets := n.IterationSets(iterSetFrac)
		def := core.DefaultSchedule(mesh, len(sets))
		for k, set := range sets {
			c := int(def.Core[k])
			for flat := set.Lo; flat < set.Hi; flat++ {
				iv = n.Unflatten(iv, flat)
				for r := range n.Refs {
					addr := n.Refs[r].Addr(iv, flat)
					pg := int(addr / mem.Addr(pageSize) % mem.Addr(nmc))
					counts[n.Refs[r].Array][pg][c]++
				}
			}
		}
	}
	do := &DOMap{Base: base, PageSize: pageSize}
	for _, a := range p.Arrays {
		bestRot, bestCost := 0, 0.0
		for rot := 0; rot < nmc; rot++ {
			cost := 0.0
			for pg := 0; pg < nmc; pg++ {
				mc := topology.MCID((pg + rot) % nmc)
				for c, cnt := range counts[a][pg] {
					if cnt > 0 {
						cost += cnt * float64(mesh.DistanceToMC(topology.NodeID(c), mc))
					}
				}
			}
			if rot == 0 || cost < bestCost {
				bestRot, bestCost = rot, cost
			}
		}
		lo := a.Base / mem.Addr(pageSize)
		hi := (a.Base + mem.Addr(a.SizeBytes()) + mem.Addr(pageSize) - 1) / mem.Addr(pageSize)
		do.rots = append(do.rots, arrayRot{lo: lo, hi: hi, rot: bestRot})
	}
	return do
}

// HWSchedule implements the application-to-core policy of Das et al.
// [16], treating each thread of the multithreaded application as an
// independent "application": threads are ranked by memory intensity
// (profiled LLC-miss volume) and the most intensive threads are placed on
// the cores closest to a memory controller. It returns per-nest
// schedules: the default round-robin set partition re-homed through the
// thread→core permutation.
func HWSchedule(sys *sim.System, p *loop.Program) *sim.Schedule {
	mesh := sys.Mesh()
	nodes := mesh.NumNodes()

	// Profile: run the program once under the default schedule and
	// accumulate per-default-core miss counts.
	def := sys.DefaultScheduleFor(p)
	res := sys.RunProgram(p, def)
	intensity := make([]float64, nodes)
	for i, n := range p.Nests {
		sets := sys.Sets(n)
		for k := range sets {
			c := int(def.Assign[i].Core[k])
			for _, m := range res.NestObs[i][k].MCMisses {
				intensity[c] += m
			}
		}
	}
	sys.Reset()

	// Rank threads by intensity, cores by distance to the nearest MC.
	threads := make([]int, nodes)
	cores := make([]int, nodes)
	for i := range threads {
		threads[i] = i
		cores[i] = i
	}
	sort.SliceStable(threads, func(a, b int) bool { return intensity[threads[a]] > intensity[threads[b]] })
	sort.SliceStable(cores, func(a, b int) bool {
		da := mesh.DistanceToMC(topology.NodeID(cores[a]), mesh.NearestMC(topology.NodeID(cores[a])))
		db := mesh.DistanceToMC(topology.NodeID(cores[b]), mesh.NearestMC(topology.NodeID(cores[b])))
		return da < db
	})
	perm := make([]topology.NodeID, nodes)
	for i := range threads {
		perm[threads[i]] = topology.NodeID(cores[i])
	}

	// Re-home the default partition through the permutation.
	sched := &sim.Schedule{Assign: make([]*core.Assignment, len(p.Nests))}
	for i, n := range p.Nests {
		sets := sys.Sets(n)
		a := &core.Assignment{
			Region: make([]topology.RegionID, len(sets)),
			Core:   make([]topology.NodeID, len(sets)),
		}
		for k := range sets {
			c := perm[int(def.Assign[i].Core[k])]
			a.Core[k] = c
			a.Region[k] = mesh.RegionOf(c)
		}
		sched.Assign[i] = a
	}
	return sched
}
