package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"locmap/internal/store"
)

// PlanPath is the peer-API route prefix for plan entries; the entry's
// fingerprint is appended as the final path element. Both the minimal
// NewKVHandler and locmapd's server mount it, so a Client can talk to
// either.
const PlanPath = "/v1/cluster/plan/"

// PlanDoc is the wire form of a store.Entry. Payload is raw plan
// bytes (base64 in JSON, per encoding/json convention). On PUT,
// Upgrade selects the tier-lifecycle write (store.KV.Upgrade) instead
// of a plain refresh.
type PlanDoc struct {
	Payload []byte `json:"payload"`
	Tier    string `json:"tier,omitempty"`
	Upgrade bool   `json:"upgrade,omitempty"`
}

// PutResult reports what a peer write did.
type PutResult struct {
	// Inserted is true when the write created the key (mirrors
	// store.KV.Put's return; a PUT with Upgrade set reports
	// !present through the same field).
	Inserted bool `json:"inserted"`
}

// Client is a store.KV backed by one peer's plan cache over HTTP.
// Every operation is best-effort with the configured timeout: a
// network or server failure reads as a miss on Get and a no-op on
// writes — cluster peers are an optimization, never a dependency.
// The optional OnError callback observes those swallowed failures
// (locmapd counts them as peer errors).
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration

	// OnError, if set, is called with the operation name ("get",
	// "put", "delete") and the underlying error whenever a remote
	// operation is swallowed into a miss/no-op.
	OnError func(op string, err error)
}

// NewClient builds a client for the peer at base (scheme://host:port,
// no trailing slash needed). timeout bounds each operation end to end
// (<= 0 selects 2s, a ceiling chosen so a dead peer delays a request
// far less than recomputing a plan would).
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Client{
		base:    base,
		hc:      &http.Client{Timeout: timeout},
		timeout: timeout,
	}
}

// Base returns the peer's base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) planURL(key string) string {
	return c.base + PlanPath + url.PathEscape(key)
}

func (c *Client) fail(op string, err error) {
	if c.OnError != nil {
		c.OnError(op, err)
	}
}

// GetE fetches the entry stored under key on the peer, distinguishing
// a genuine miss (nil error, ok false) from a peer failure (non-nil
// error) — locmapd uses the distinction to decide between proxying to
// the owner and degrading to local compute.
func (c *Client) GetE(ctx context.Context, key string) (store.Entry, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.planURL(key), nil)
	if err != nil {
		return store.Entry{}, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return store.Entry{}, false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var doc PlanDoc
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
			return store.Entry{}, false, fmt.Errorf("cluster: decode plan doc: %w", err)
		}
		return store.Entry{Payload: doc.Payload, Tier: doc.Tier}, true, nil
	case http.StatusNotFound:
		return store.Entry{}, false, nil
	default:
		return store.Entry{}, false, fmt.Errorf("cluster: peer returned %s", resp.Status)
	}
}

// Get implements store.KV: a peer failure reads as a miss.
func (c *Client) Get(key string) (store.Entry, bool) {
	e, ok, err := c.GetE(context.Background(), key)
	if err != nil {
		c.fail("get", err)
		return store.Entry{}, false
	}
	return e, ok
}

// put performs the shared PUT for Put and Upgrade.
func (c *Client) put(key string, doc PlanDoc) (PutResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	body, err := json.Marshal(doc)
	if err != nil {
		return PutResult{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.planURL(key), bytes.NewReader(body))
	if err != nil {
		return PutResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return PutResult{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return PutResult{}, fmt.Errorf("cluster: peer returned %s", resp.Status)
	}
	var res PutResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return PutResult{}, fmt.Errorf("cluster: decode put result: %w", err)
	}
	return res, nil
}

// Put implements store.KV: stores e under key on the peer, reporting
// whether a new key was inserted. A peer failure is a no-op reported
// as no insertion.
func (c *Client) Put(key string, e store.Entry) bool {
	res, err := c.put(key, PlanDoc{Payload: e.Payload, Tier: e.Tier})
	if err != nil {
		c.fail("put", err)
		return false
	}
	return res.Inserted
}

// Upgrade implements store.KV: the tier-lifecycle write, reporting
// whether the key was present. A peer failure is a no-op reported as
// not present.
func (c *Client) Upgrade(key string, e store.Entry) bool {
	res, err := c.put(key, PlanDoc{Payload: e.Payload, Tier: e.Tier, Upgrade: true})
	if err != nil {
		c.fail("put", err)
		return false
	}
	return !res.Inserted
}

// Delete implements store.KV: removes key on the peer; failures are
// no-ops.
func (c *Client) Delete(key string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.planURL(key), nil)
	if err != nil {
		c.fail("delete", err)
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.fail("delete", err)
		return
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		c.fail("delete", fmt.Errorf("cluster: peer returned %s", resp.Status))
	}
}

// drain discards the rest of a response body and closes it so the
// underlying connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
