package cluster

import (
	"encoding/json"
	"io"
	"net/http"

	"locmap/internal/store"
)

// NewKVHandler serves the peer plan API over kv: the minimal wire
// protocol a Client speaks, with plain status codes and JSON bodies.
//
//	GET    /v1/cluster/plan/{fingerprint}  -> 200 PlanDoc | 404
//	PUT    /v1/cluster/plan/{fingerprint}  <- PlanDoc, -> 200 PutResult
//	DELETE /v1/cluster/plan/{fingerprint}  -> 204
//
// locmapd mounts its own version of these routes (same shapes, the
// service's error envelope); this handler exists so any store.KV can
// be exposed to a Client directly — the remote-KV conformance tests
// run the suite over exactly this pairing.
func NewKVHandler(kv store.KV) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PlanPath+"{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := kv.Get(r.PathValue("fingerprint"))
		if !ok {
			http.Error(w, "plan not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PlanDoc{Payload: e.Payload, Tier: e.Tier})
	})
	mux.HandleFunc("PUT "+PlanPath+"{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		var doc PlanDoc
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&doc); err != nil {
			http.Error(w, "bad plan doc: "+err.Error(), http.StatusBadRequest)
			return
		}
		key := r.PathValue("fingerprint")
		e := store.Entry{Payload: doc.Payload, Tier: doc.Tier}
		var inserted bool
		if doc.Upgrade {
			inserted = !kv.Upgrade(key, e)
		} else {
			inserted = kv.Put(key, e)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PutResult{Inserted: inserted})
	})
	mux.HandleFunc("DELETE "+PlanPath+"{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		kv.Delete(r.PathValue("fingerprint"))
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
